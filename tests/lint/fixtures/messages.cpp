// Fixture: decodeProbe forgets ProbeMsg::checksum — the silent field
// drift the serialization-coverage rule exists to catch.
#include "messages.hpp"

void encode(const ProbeMsg& msg, Sink& out) {
  out.writeU64(msg.id);
  out.writeU64(msg.payload);
  out.writeU64(msg.checksum);
}

ProbeMsg decodeProbe(const Buffer& in) {
  ProbeMsg msg;
  msg.id = in.readU64();
  msg.payload = in.readU64();
  return msg;
}
