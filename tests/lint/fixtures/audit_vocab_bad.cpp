// Fixture: audit `action` names must come from the marker-tagged registry
// header (audit_registry.hpp here); free-form literals break the closed
// vocabulary. Expected findings: lines 9 and 10.
#include "audit_registry.hpp"

void emitAudits(AuditSink& sink) {
  AuditRecord record;
  record.action = "degrade_fidelity";  // registered: clean
  record.action = "turbo_boost";       // unregistered literal: finding
  sink.auditEvent("made_up_event",     // unregistered call literal: finding
                  "fixture-strategy");
  sink.auditEvent(roia::obs::events::kDrainComplete,  // constant: clean
                  "fixture-strategy");
  // Commented-out emissions never fire: sink.auditEvent("ghost_event", "x");
}
