// Fixture: a wire message whose decode path silently dropped a field.
// The serialization-coverage rule anchors on files named messages.hpp.
#pragma once

#include <cstdint>

struct Sink;
struct Buffer;

struct ProbeMsg {
  std::uint64_t id{0};
  std::uint64_t payload{0};
  std::uint64_t checksum{0};
};

void encode(const ProbeMsg& msg, Sink& out);
ProbeMsg decodeProbe(const Buffer& in);
