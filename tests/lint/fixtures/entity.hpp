// Fixture: snapshot struct whose schema table (snapshot_codec.cpp beside
// this file) drops two fields — vx and health must be flagged here.
#pragma once

#include <cstdint>

namespace roia::rtf {

struct EntitySnapshot {
  std::uint64_t id{0};
  float x{0.0F};
  float y{0.0F};
  float vx{0.0F};
  float health{100.0F};
};

}  // namespace roia::rtf
