// roia-audit-event-registry — fixture vocabulary for the audit-vocabulary
// rule self-test (stands in for src/obs/events.hpp).
#pragma once

namespace roia::obs::events {

inline constexpr const char* kDegradeFidelity = "degrade_fidelity";
inline constexpr const char* kDrainComplete = "drain_complete";

}  // namespace roia::obs::events
