// Fixture: every banned determinism construct, one per line, at fixed
// line numbers the self-test asserts on. Never compiled.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

int unseededDraw() {
  std::mt19937 gen;
  return static_cast<int>(gen());
}

long wallClockNow() {
  auto now = std::chrono::system_clock::now();
  long stamp = time(nullptr);
  return std::chrono::duration_cast<std::chrono::seconds>(now.time_since_epoch()).count() + stamp;
}

int libcRandom() {
  return rand();
}

unsigned hardwareEntropy() {
  std::random_device dev;
  return dev();
}
