// Fixture: allocations inside a function annotated as a hot path.
#include <string>
#include <vector>

// roia-hot
int hotSum(const int* values, int count) {
  std::vector<int> copy(values, values + count);
  std::string label = std::to_string(count);
  int* scratch = new int[4];
  int total = scratch[0] + static_cast<int>(label.size());
  for (int v : copy) total += v;
  delete[] scratch;
  return total;
}
