#!/usr/bin/env python3
"""Self-test for tools/lint/roia_lint.py, run as `ctest -L lint`.

Three checks:
 1. The fixture suite produces exactly the expected (file, line, rule)
    findings — no more, no fewer — and the justified suppression lands in
    the suppressed list, all via the machine-readable JSON output.
 2. The real tree (src/) is clean: exit 0, zero findings.
 3. --list-rules names every rule the fixtures exercise.
"""

import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
LINT = os.path.join(REPO_ROOT, "tools", "lint", "roia_lint.py")
FIXTURES = os.path.join(REPO_ROOT, "tests", "lint", "fixtures")

# Exact expectations: basename, 1-indexed line, rule id. A linter that
# drifts by one line or invents/loses a finding fails this test.
EXPECTED_FINDINGS = {
    ("audit_vocab_bad.cpp", 9, "audit-vocabulary"),
    ("audit_vocab_bad.cpp", 10, "audit-vocabulary"),
    ("determinism_bad.cpp", 9, "determinism"),
    ("determinism_bad.cpp", 14, "determinism"),
    ("determinism_bad.cpp", 15, "determinism"),
    ("determinism_bad.cpp", 20, "determinism"),
    ("determinism_bad.cpp", 24, "determinism"),
    ("bounded_retry_bad.cpp", 10, "bounded-retry"),
    ("bounded_retry_bad.cpp", 17, "bounded-retry"),
    ("bounded_retry_bad.cpp", 24, "bounded-retry"),
    ("hot_alloc_bad.cpp", 7, "hot-path-alloc"),
    ("hot_alloc_bad.cpp", 8, "hot-path-alloc"),  # std::string
    ("hot_alloc_bad.cpp", 8, "hot-path-alloc"),  # std::to_string (dedup'd in set)
    ("hot_alloc_bad.cpp", 9, "hot-path-alloc"),
    ("messages.hpp", 13, "serialization-coverage"),
    ("entity.hpp", 13, "serialization-coverage"),   # EntitySnapshot.vx
    ("entity.hpp", 14, "serialization-coverage"),   # EntitySnapshot.health
    ("ordered_iteration_bad.cpp", 10, "ordered-iteration"),
    ("suppression_missing_reason.cpp", 6, "bad-suppression"),
    ("suppression_missing_reason.cpp", 6, "determinism"),
}
EXPECTED_SUPPRESSED = {
    ("suppressed_ok.cpp", 5, "determinism"),
}
EXPECTED_RULES = {
    "determinism", "ordered-iteration", "serialization-coverage",
    "hot-path-alloc", "bounded-retry", "audit-vocabulary", "bad-suppression",
}


def run_lint(*args):
    return subprocess.run([sys.executable, LINT, *args],
                          capture_output=True, text=True, cwd=REPO_ROOT)


def as_keys(entries):
    return {(os.path.basename(e["file"]), e["line"], e["rule"]) for e in entries}


def main():
    failures = []

    # 1. Fixture suite: exact rule ids and line numbers, nonzero exit.
    proc = run_lint("--assume-core", "--format", "json", FIXTURES)
    if proc.returncode != 1:
        failures.append(f"fixtures: expected exit 1, got {proc.returncode}\n{proc.stderr}")
    report = json.loads(proc.stdout)
    if report.get("schema") != "roia-lint/1":
        failures.append(f"fixtures: unexpected schema {report.get('schema')!r}")
    got = as_keys(report["findings"])
    if got != EXPECTED_FINDINGS:
        failures.append(
            "fixtures: findings mismatch\n"
            f"  missing:    {sorted(EXPECTED_FINDINGS - got)}\n"
            f"  unexpected: {sorted(got - EXPECTED_FINDINGS)}")
    # The std::string + std::to_string double hit on line 8 must both exist.
    line8 = [f for f in report["findings"]
             if os.path.basename(f["file"]) == "hot_alloc_bad.cpp" and f["line"] == 8]
    if len(line8) != 2:
        failures.append(f"fixtures: expected 2 findings on hot_alloc_bad.cpp:8, got {len(line8)}")
    if as_keys(report["suppressed"]) != EXPECTED_SUPPRESSED:
        failures.append(f"fixtures: suppressed mismatch: {report['suppressed']}")

    # 2. The real tree starts (and stays) clean.
    proc = run_lint("--format", "json", "src/")
    if proc.returncode != 0:
        failures.append(f"src/: expected exit 0, got {proc.returncode}\n{proc.stdout}")
    else:
        report = json.loads(proc.stdout)
        if report["findings"]:
            failures.append(f"src/: unexpected findings: {report['findings']}")
        if report["files_scanned"] < 50:
            failures.append(f"src/: suspiciously few files scanned: {report['files_scanned']}")

    # 3. Rule catalogue is complete.
    proc = run_lint("--list-rules")
    listed = {line.split()[0] for line in proc.stdout.splitlines() if line.strip()}
    if not EXPECTED_RULES <= listed:
        failures.append(f"--list-rules missing {EXPECTED_RULES - listed}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("roia-lint self-test: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
