#!/usr/bin/env python3
"""Self-test for tools/lint/roia_lint.py + cpp_index.py, run as `ctest -L lint`.

Checks:
 1. The line-local fixture suite produces exactly the expected
    (file, line, rule) findings — no more, no fewer — and the justified
    suppression lands in the suppressed list, via the JSON output.
 2. The call-graph fixture tree fires transitive-hot-alloc and
    determinism-taint with exact lines AND the exact source -> sink /
    hot-root -> callee chains — cross-TU cases the line-local rules
    provably cannot see.
 3. The wire fixture tree drifts from its committed drifted manifest in
    all five ways (field removed, type changed, struct added, struct
    retired, schema reordered); regenerating the manifest makes the same
    tree pass clean.
 4. Deleting a field from the real rtf/messages.hpp (in a temp copy)
    fails wire-schema-drift against the committed manifest; regenerating
    passes — the end-to-end protocol-freeze guarantee.
 5. The debt fixture tree flags the stale allow(), keeps the live one,
    and the JSON debt table carries both with rule/reason/liveness.
 6. The cpp_index unit fixture parses namespaces, classes, out-of-line
    methods, overload sets, templates and ctors with init lists, with
    correct qualnames, hot flags, facts and call edges.
 7. The real tree (src/) is clean under ALL rules: exit 0, zero findings.
 8. --format sarif emits valid SARIF 2.1.0; --changed-only exits cleanly.
 9. --list-rules names every rule the fixtures exercise.
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
LINT = os.path.join(REPO_ROOT, "tools", "lint", "roia_lint.py")
LINT_DIR = os.path.join(REPO_ROOT, "tests", "lint")
FIXTURES = os.path.join(LINT_DIR, "fixtures")
FIXTURES_CALLGRAPH = os.path.join(LINT_DIR, "fixtures_callgraph")
FIXTURES_WIRE = os.path.join(LINT_DIR, "fixtures_wire")
FIXTURES_DEBT = os.path.join(LINT_DIR, "fixtures_debt")
FIXTURES_INDEX = os.path.join(LINT_DIR, "fixtures_index")

sys.path.insert(0, os.path.join(REPO_ROOT, "tools", "lint"))
import cpp_index  # noqa: E402

# Exact expectations: basename, 1-indexed line, rule id. A linter that
# drifts by one line or invents/loses a finding fails this test.
EXPECTED_FINDINGS = {
    ("audit_vocab_bad.cpp", 9, "audit-vocabulary"),
    ("audit_vocab_bad.cpp", 10, "audit-vocabulary"),
    ("determinism_bad.cpp", 9, "determinism"),
    ("determinism_bad.cpp", 14, "determinism"),
    ("determinism_bad.cpp", 15, "determinism"),
    ("determinism_bad.cpp", 20, "determinism"),
    ("determinism_bad.cpp", 24, "determinism"),
    ("bounded_retry_bad.cpp", 10, "bounded-retry"),
    ("bounded_retry_bad.cpp", 17, "bounded-retry"),
    ("bounded_retry_bad.cpp", 24, "bounded-retry"),
    ("hot_alloc_bad.cpp", 7, "hot-path-alloc"),
    ("hot_alloc_bad.cpp", 8, "hot-path-alloc"),  # std::string
    ("hot_alloc_bad.cpp", 8, "hot-path-alloc"),  # std::to_string (dedup'd in set)
    ("hot_alloc_bad.cpp", 9, "hot-path-alloc"),
    ("messages.hpp", 13, "serialization-coverage"),
    ("entity.hpp", 13, "serialization-coverage"),   # EntitySnapshot.vx
    ("entity.hpp", 14, "serialization-coverage"),   # EntitySnapshot.health
    ("ordered_iteration_bad.cpp", 10, "ordered-iteration"),
    ("suppression_missing_reason.cpp", 6, "bad-suppression"),
    ("suppression_missing_reason.cpp", 6, "determinism"),
}
EXPECTED_SUPPRESSED = {
    ("suppressed_ok.cpp", 5, "determinism"),
}

# Cross-function cases: the line-local rules see at most the source line;
# the chains below only exist in the whole-program call graph.
EXPECTED_CALLGRAPH_FINDINGS = {
    ("chain_helpers.cpp", 14, "transitive-hot-alloc"),
    ("taint_chain.cpp", 14, "determinism"),           # line-local still fires
    ("taint_chain.cpp", 14, "determinism-taint"),
    ("taint_unordered.cpp", 17, "determinism-taint"),
    ("taint_unordered.cpp", 17, "ordered-iteration"),  # line-local still fires
}
EXPECTED_CHAINS = {
    "transitive-hot-alloc": "hotRoot -> midHelper -> leafAlloc",
    "determinism-taint@taint_chain.cpp": "entropy -> jitterSeed -> encodeBeacon",
    "determinism-taint@taint_unordered.cpp": "sumShares -> reportShares",
}

EXPECTED_WIRE_FINDINGS = {
    ("messages.hpp", 1, "wire-schema-drift"),    # RetiredMsg gone from source
    ("messages.hpp", 19, "wire-schema-drift"),   # PingMsg lost `nonce`
    ("messages.hpp", 25, "wire-schema-drift"),   # PongMsg.status type changed
    ("messages.hpp", 31, "wire-schema-drift"),   # NewMsg not in manifest
    ("snapshot_codec.cpp", 13, "wire-schema-drift"),  # schema rows reordered
}

EXPECTED_DEBT_FINDINGS = {
    ("stale_allow.cpp", 6, "suppression-debt"),
}
EXPECTED_DEBT_SUPPRESSED = {
    ("live_allow.cpp", 7, "determinism"),
}

EXPECTED_RULES = {
    "determinism", "ordered-iteration", "serialization-coverage",
    "hot-path-alloc", "bounded-retry", "audit-vocabulary", "bad-suppression",
    "transitive-hot-alloc", "determinism-taint", "wire-schema-drift",
    "suppression-debt",
}


def run_lint(*args):
    return subprocess.run([sys.executable, LINT, *args],
                          capture_output=True, text=True, cwd=REPO_ROOT)


def as_keys(entries):
    return {(os.path.basename(e["file"]), e["line"], e["rule"]) for e in entries}


def check_line_local_fixtures(failures):
    proc = run_lint("--assume-core", "--format", "json", FIXTURES)
    if proc.returncode != 1:
        failures.append(f"fixtures: expected exit 1, got {proc.returncode}\n{proc.stderr}")
        return
    report = json.loads(proc.stdout)
    if report.get("schema") != "roia-lint/1":
        failures.append(f"fixtures: unexpected schema {report.get('schema')!r}")
    got = as_keys(report["findings"])
    if got != EXPECTED_FINDINGS:
        failures.append(
            "fixtures: findings mismatch\n"
            f"  missing:    {sorted(EXPECTED_FINDINGS - got)}\n"
            f"  unexpected: {sorted(got - EXPECTED_FINDINGS)}")
    # The std::string + std::to_string double hit on line 8 must both exist.
    line8 = [f for f in report["findings"]
             if os.path.basename(f["file"]) == "hot_alloc_bad.cpp" and f["line"] == 8]
    if len(line8) != 2:
        failures.append(f"fixtures: expected 2 findings on hot_alloc_bad.cpp:8, got {len(line8)}")
    if as_keys(report["suppressed"]) != EXPECTED_SUPPRESSED:
        failures.append(f"fixtures: suppressed mismatch: {report['suppressed']}")


def check_callgraph_fixtures(failures):
    proc = run_lint("--assume-core", "--format", "json", FIXTURES_CALLGRAPH)
    if proc.returncode != 1:
        failures.append(f"callgraph: expected exit 1, got {proc.returncode}\n{proc.stderr}")
        return
    report = json.loads(proc.stdout)
    got = as_keys(report["findings"])
    if got != EXPECTED_CALLGRAPH_FINDINGS:
        failures.append(
            "callgraph: findings mismatch\n"
            f"  missing:    {sorted(EXPECTED_CALLGRAPH_FINDINGS - got)}\n"
            f"  unexpected: {sorted(got - EXPECTED_CALLGRAPH_FINDINGS)}")
    for f in report["findings"]:
        base = os.path.basename(f["file"])
        if f["rule"] == "transitive-hot-alloc":
            want = EXPECTED_CHAINS["transitive-hot-alloc"]
        elif f["rule"] == "determinism-taint":
            want = EXPECTED_CHAINS.get(f"determinism-taint@{base}")
        else:
            continue
        if want and want not in f["message"]:
            failures.append(
                f"callgraph: {base}:{f['line']} [{f['rule']}] message lacks "
                f"chain {want!r}: {f['message']}")


def check_wire_fixtures(failures):
    drifted = os.path.join(FIXTURES_WIRE, "wire_manifest_drifted.json")
    proc = run_lint("--assume-core", "--manifest", drifted,
                    "--format", "json", FIXTURES_WIRE)
    if proc.returncode != 1:
        failures.append(f"wire: expected exit 1, got {proc.returncode}\n{proc.stderr}")
        return
    got = as_keys(json.loads(proc.stdout)["findings"])
    if got != EXPECTED_WIRE_FINDINGS:
        failures.append(
            "wire: findings mismatch\n"
            f"  missing:    {sorted(EXPECTED_WIRE_FINDINGS - got)}\n"
            f"  unexpected: {sorted(got - EXPECTED_WIRE_FINDINGS)}")
    # Regenerating the manifest from the same tree must make it pass.
    with tempfile.TemporaryDirectory() as tmp:
        fresh = os.path.join(tmp, "manifest.json")
        proc = run_lint("--manifest", fresh, "--write-manifest", FIXTURES_WIRE)
        if proc.returncode != 0:
            failures.append(f"wire: --write-manifest failed\n{proc.stderr}")
            return
        proc = run_lint("--assume-core", "--manifest", fresh,
                        "--format", "json", FIXTURES_WIRE)
        if proc.returncode != 0:
            failures.append(
                f"wire: regenerated manifest should pass, got exit "
                f"{proc.returncode}\n{proc.stdout}")


def check_wire_drift_real_tree(failures):
    """Deleting a real *Msg field without regenerating the manifest fails."""
    with tempfile.TemporaryDirectory() as tmp:
        rtf = os.path.join(tmp, "rtf")
        os.makedirs(rtf)
        for name in ("messages.hpp", "snapshot_codec.cpp", "entity.hpp"):
            shutil.copy(os.path.join(REPO_ROOT, "src", "rtf", name), rtf)
        hpp = os.path.join(rtf, "messages.hpp")
        with open(hpp, encoding="utf-8") as f:
            lines = f.readlines()
        start = next(i for i, l in enumerate(lines)
                     if "struct MigrationAckMsg" in l)
        victim = next(i for i in range(start, len(lines))
                      if "traceId" in lines[i] and ";" in lines[i])
        del lines[victim]
        with open(hpp, "w", encoding="utf-8") as f:
            f.writelines(lines)
        committed = os.path.join(REPO_ROOT, "tools", "lint", "wire_manifest.json")
        proc = run_lint("--manifest", committed, "--format", "json", rtf)
        if proc.returncode != 1:
            failures.append(
                f"wire-real: deleted field should fail lint, got exit "
                f"{proc.returncode}\n{proc.stdout}")
            return
        findings = json.loads(proc.stdout)["findings"]
        hits = [f for f in findings if f["rule"] == "wire-schema-drift"
                and "MigrationAckMsg" in f["message"]]
        if len(hits) != 1 or len(findings) != 1:
            failures.append(f"wire-real: expected exactly the MigrationAckMsg "
                            f"drift finding, got {findings}")
        fresh = os.path.join(tmp, "manifest.json")
        proc = run_lint("--manifest", fresh, "--write-manifest", rtf)
        if proc.returncode != 0:
            failures.append(f"wire-real: --write-manifest failed\n{proc.stderr}")
            return
        proc = run_lint("--manifest", fresh, rtf)
        if proc.returncode != 0:
            failures.append(
                f"wire-real: regenerated manifest should pass, got exit "
                f"{proc.returncode}\n{proc.stdout}")


def check_debt_fixtures(failures):
    proc = run_lint("--assume-core", "--format", "json", FIXTURES_DEBT)
    if proc.returncode != 1:
        failures.append(f"debt: expected exit 1, got {proc.returncode}\n{proc.stderr}")
        return
    report = json.loads(proc.stdout)
    if as_keys(report["findings"]) != EXPECTED_DEBT_FINDINGS:
        failures.append(f"debt: findings mismatch: {report['findings']}")
    if as_keys(report["suppressed"]) != EXPECTED_DEBT_SUPPRESSED:
        failures.append(f"debt: suppressed mismatch: {report['suppressed']}")
    table = {(os.path.basename(d["file"]), d["line"]): d
             for d in report["suppression_debt"]}
    if set(table) != {("live_allow.cpp", 7), ("stale_allow.cpp", 6)}:
        failures.append(f"debt: table rows mismatch: {sorted(table)}")
        return
    live = table[("live_allow.cpp", 7)]
    stale = table[("stale_allow.cpp", 6)]
    if not (live["live"] is True and stale["live"] is False):
        failures.append(f"debt: liveness wrong: {live} / {stale}")
    for row in (live, stale):
        if row["rules"] != ["determinism"] or not row["reason"] or "age_days" not in row:
            failures.append(f"debt: malformed table row: {row}")


def check_indexer(failures):
    path = os.path.join(FIXTURES_INDEX, "index_fixture.cpp")
    index = cpp_index.build_index([path])
    by_qual = {}
    for fn in index.functions:
        by_qual.setdefault(fn.qualname, []).append(fn)
    must_parse = {
        "outer::inner::freeHelper",
        "outer::inner::templateAdd",
        "outer::inner::Widget::Widget",          # ctor with init list
        "outer::inner::Widget::inlineGet",       # inline method
        "outer::inner::Widget::outOfLine",       # out-of-line Cls::method
        "outer::inner::Widget::overloaded",      # overload set
        "outer::inner::hotEntry",
    }
    missing = must_parse - set(by_qual)
    if missing:
        failures.append(f"indexer: unparsed definitions: {sorted(missing)}")
        return
    if len(by_qual["outer::inner::Widget::overloaded"]) != 2:
        failures.append("indexer: overload set should index both definitions")
    hot = by_qual["outer::inner::hotEntry"][0]
    if not hot.hot:
        failures.append("indexer: hotEntry must carry the roia-hot flag")
    if any(fn.hot for q, fns in by_qual.items() for fn in fns
           if q != "outer::inner::hotEntry"):
        failures.append("indexer: only hotEntry is annotated hot")
    out_of_line = by_qual["outer::inner::Widget::outOfLine"][0]
    if not out_of_line.allocs:
        failures.append("indexer: outOfLine's std::vector alloc fact missing")
    if out_of_line.cls != "Widget":
        failures.append(f"indexer: outOfLine cls is {out_of_line.cls!r}")
    callee_names = {c.qualname for c, _line in index.callees(out_of_line)}
    if "outer::inner::freeHelper" not in callee_names:
        failures.append(f"indexer: outOfLine -> freeHelper edge missing ({callee_names})")
    hot_callees = {c.qualname for c, _line in index.callees(hot)}
    if not {"outer::inner::Widget::inlineGet", "outer::inner::freeHelper"} <= hot_callees:
        failures.append(f"indexer: hotEntry call edges wrong ({hot_callees})")


def check_real_tree(failures):
    proc = run_lint("--format", "json", "src/")
    if proc.returncode != 0:
        failures.append(f"src/: expected exit 0, got {proc.returncode}\n{proc.stdout}")
        return
    report = json.loads(proc.stdout)
    if report["findings"]:
        failures.append(f"src/: unexpected findings: {report['findings']}")
    if report["files_scanned"] < 50:
        failures.append(f"src/: suspiciously few files scanned: {report['files_scanned']}")
    if report["suppression_debt"]:
        failures.append(f"src/: unexpected suppression debt: {report['suppression_debt']}")


def check_output_modes(failures):
    proc = run_lint("--assume-core", "--format", "sarif", FIXTURES)
    try:
        sarif = json.loads(proc.stdout)
    except ValueError:
        failures.append(f"sarif: output is not JSON\n{proc.stdout[:400]}")
        return
    if sarif.get("version") != "2.1.0" or "runs" not in sarif:
        failures.append(f"sarif: not a SARIF 2.1.0 document: {list(sarif)}")
        return
    run = sarif["runs"][0]
    driver = run["tool"]["driver"]
    if driver.get("name") != "roia-lint":
        failures.append(f"sarif: wrong driver name {driver.get('name')!r}")
    rule_ids = {r["id"] for r in driver["rules"]}
    if not EXPECTED_RULES <= rule_ids:
        failures.append(f"sarif: rules metadata missing {EXPECTED_RULES - rule_ids}")
    # +1: the hot_alloc_bad.cpp:8 double hit dedups in the expectation set.
    if len(run["results"]) != len(EXPECTED_FINDINGS) + 1:
        failures.append(
            f"sarif: {len(run['results'])} results vs "
            f"{len(EXPECTED_FINDINGS) + 1} expected findings")
    for result in run["results"]:
        loc = result["locations"][0]["physicalLocation"]
        if not loc["artifactLocation"]["uri"] or loc["region"]["startLine"] < 1:
            failures.append(f"sarif: malformed location: {result}")
            break

    proc = run_lint("--changed-only", "src/")
    if proc.returncode not in (0, 1):
        failures.append(f"--changed-only: unexpected exit {proc.returncode}\n{proc.stderr}")


def check_rule_catalogue(failures):
    proc = run_lint("--list-rules")
    listed = {line.split()[0] for line in proc.stdout.splitlines() if line.strip()}
    if not EXPECTED_RULES <= listed:
        failures.append(f"--list-rules missing {EXPECTED_RULES - listed}")


def main():
    failures = []
    check_line_local_fixtures(failures)
    check_callgraph_fixtures(failures)
    check_wire_fixtures(failures)
    check_wire_drift_real_tree(failures)
    check_debt_fixtures(failures)
    check_indexer(failures)
    check_real_tree(failures)
    check_output_modes(failures)
    check_rule_catalogue(failures)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("roia-lint self-test: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
