// Fixture: midHelper is clean; leafAlloc allocates. Neither is annotated
// hot — they are only *reachable* from hotRoot (hot_root.cpp), so the
// finding must carry the hotRoot -> midHelper -> leafAlloc chain and land
// on the std::vector line below. Never compiled.
#include "chain_helpers.hpp"

#include <vector>

int midHelper(int n) {
  return leafAlloc(n) * 2;
}

int leafAlloc(int n) {
  std::vector<int> scratch(static_cast<unsigned long>(n), 1);
  return static_cast<int>(scratch.size()) + n;
}
