// Fixture: the hot root is allocation-free itself, so the line-local
// hot-path-alloc rule sees nothing; the allocation hides two calls deep
// in a different TU (chain_helpers.cpp). Only the whole-program
// transitive-hot-alloc rule can catch it. Never compiled.
#include "chain_helpers.hpp"

// roia-hot
int hotRoot(int n) {
  return midHelper(n) + 1;
}
