// Fixture: unordered iteration order leaking into a telemetry emission
// one call up — sumShares folds an unordered_map in iteration order
// (float rounding depends on it) and reportShares audits the result.
// The chain sumShares -> reportShares is invisible to line-local rules.
// Never compiled.
#include <string_view>
#include <unordered_map>

inline constexpr std::string_view kSharesEvent = "shares_reported";

struct AuditSink {
  void auditEvent(std::string_view, double) {}
};

double sumShares(const std::unordered_map<int, double>& shares) {
  double total = 0.0;
  for (const auto& [id, share] : shares) total += share * 0.5;
  return total;
}

void reportShares(AuditSink& sink,
                  const std::unordered_map<int, double>& shares) {
  sink.auditEvent(kSharesEvent, sumShares(shares));
}
