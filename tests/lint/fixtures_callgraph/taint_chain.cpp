// Fixture: hardware entropy drawn two frames below the encode path. The
// line-local determinism rule sees only the std::random_device line; the
// determinism-taint rule must additionally report the full
// entropy -> jitterSeed -> encodeBeacon source-to-sink chain. Never
// compiled.
#include <cstdint>
#include <random>

struct Writer {
  void writeU32(std::uint32_t) {}
};

std::uint32_t entropy() {
  std::random_device dev;
  return dev();
}

std::uint32_t jitterSeed() {
  return entropy() | 1u;
}

void encodeBeacon(Writer& w) {
  w.writeU32(jitterSeed());
}
