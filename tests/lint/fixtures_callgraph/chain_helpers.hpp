// Fixture: declarations only — the indexer indexes definitions, so this
// header contributes no functions; the cross-TU edge resolution has to
// connect hot_root.cpp to chain_helpers.cpp by name. Never compiled.
#pragma once

int midHelper(int n);
int leafAlloc(int n);
