// Fixture for the cpp_index unit test: the constructs the indexer MUST
// parse — nested namespaces, classes with inline methods, out-of-line
// `Cls::method` definitions, overload sets, template functions, and a
// constructor with an init list. Operator overloads and macro tricks are
// "may skip" territory and deliberately absent. Never compiled.
#include <vector>

namespace outer {
namespace inner {

int freeHelper(int v) { return v + 1; }

template <typename T>
T templateAdd(T a, T b) {
  return a + b;
}

class Widget {
 public:
  Widget() : count_(0) {}
  int inlineGet() const { return count_; }
  int outOfLine(int v);
  int overloaded(int v) { return v; }
  int overloaded(int v, int w) { return v + w; }

 private:
  int count_;
};

int Widget::outOfLine(int v) {
  std::vector<int> tmp(3, v);
  return freeHelper(static_cast<int>(tmp.size()));
}

// roia-hot
int hotEntry(Widget& w) {
  return w.inlineGet() + freeHelper(1);
}

}  // namespace inner
}  // namespace outer
