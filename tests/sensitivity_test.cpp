// Tests for the sensitivity-analysis tooling.
#include <gtest/gtest.h>

#include <cmath>

#include "model/sensitivity.hpp"

namespace roia::model {
namespace {

ModelParameters paperLikeParameters() {
  ModelParameters params;
  params.set(ParamKind::kUaDser, ParamFunction::linear(1.0, 0.0015));
  params.set(ParamKind::kUa, ParamFunction::quadratic(1.2, 0.009, 1.2e-4));
  params.set(ParamKind::kAoi, ParamFunction::quadratic(0.1, 0.45, 0.8e-4));
  params.set(ParamKind::kSu, ParamFunction::linear(1.5, 0.2));
  params.set(ParamKind::kFaDser, ParamFunction::linear(0.55, 0.0007));
  params.set(ParamKind::kFa, ParamFunction::linear(0.9, 0.0023));
  params.set(ParamKind::kMigIni, ParamFunction::linear(150.0, 5.0));
  params.set(ParamKind::kMigRcv, ParamFunction::linear(80.0, 2.2));
  return params;
}

constexpr double kU = 40000.0;

TEST(SensitivityTest, BaselineMatchesDirectComputation) {
  const ModelParameters params = paperLikeParameters();
  const SensitivityReport report = analyzeSensitivity(params, kU, 0.15, 0.10);
  const TickModel model(params);
  EXPECT_EQ(report.baselineNMax1, nMax(model, 1, 0, kU));
  EXPECT_EQ(report.baselineLMax, lMax(model, 0, kU, 0.15).lMax);
}

TEST(SensitivityTest, ZeroCoefficientsAreSkipped) {
  ModelParameters params = paperLikeParameters();
  params.set(ParamKind::kNpc, ParamFunction::constant(0.0));  // all-zero
  const SensitivityReport report = analyzeSensitivity(params, kU, 0.15, 0.10);
  for (const SensitivityEntry& e : report.entries) {
    EXPECT_NE(e.kind, ParamKind::kNpc);
  }
  // Every non-zero coefficient produces exactly two entries (+ and -).
  std::size_t nonZero = 0;
  for (std::size_t k = 0; k < kParamCount; ++k) {
    for (const double c : params.at(static_cast<ParamKind>(k)).coeffs) {
      if (c != 0.0) ++nonZero;
    }
  }
  EXPECT_EQ(report.entries.size(), 2 * nonZero);
}

TEST(SensitivityTest, PerturbationSignsActOppositely) {
  const SensitivityReport report =
      analyzeSensitivity(paperLikeParameters(), kU, 0.15, 0.10);
  // For the dominant t_aoi linear coefficient: +10% must not increase
  // capacity, -10% must not decrease it.
  std::size_t checked = 0;
  for (const SensitivityEntry& e : report.entries) {
    if (e.kind == ParamKind::kAoi && e.coeffIndex == 1) {
      if (e.perturbation > 0) {
        EXPECT_LE(e.nMax1, report.baselineNMax1);
      }
      if (e.perturbation < 0) {
        EXPECT_GE(e.nMax1, report.baselineNMax1);
      }
      ++checked;
    }
  }
  EXPECT_EQ(checked, 2u);
}

TEST(SensitivityTest, DominantTermOutranksTinyTerms) {
  const SensitivityReport report =
      analyzeSensitivity(paperLikeParameters(), kU, 0.15, 0.10);
  const auto ranked = report.rankedByImpact();
  ASSERT_FALSE(ranked.empty());
  // The strongest entry must be a per-user task (aoi/su/ua), never a
  // forwarded or migration parameter.
  const ParamKind top = ranked.front().kind;
  EXPECT_TRUE(top == ParamKind::kAoi || top == ParamKind::kSu || top == ParamKind::kUa);
  // Migration parameters never move n_max(1) (they are not in Eq. (1)).
  for (const SensitivityEntry& e : report.entries) {
    if (e.kind == ParamKind::kMigIni || e.kind == ParamKind::kMigRcv) {
      EXPECT_EQ(e.nMax1, report.baselineNMax1);
    }
  }
}

TEST(SensitivityTest, LargerPerturbationLargerImpact) {
  const SensitivityReport small =
      analyzeSensitivity(paperLikeParameters(), kU, 0.15, 0.05);
  const SensitivityReport large =
      analyzeSensitivity(paperLikeParameters(), kU, 0.15, 0.20);
  const double smallTop = std::fabs(small.rankedByImpact().front().nMaxDeltaPct);
  const double largeTop = std::fabs(large.rankedByImpact().front().nMaxDeltaPct);
  EXPECT_GT(largeTop, smallTop);
}

TEST(SensitivityTest, ToStringListsBaselineAndEntries) {
  const SensitivityReport report =
      analyzeSensitivity(paperLikeParameters(), kU, 0.15, 0.10);
  const std::string text = report.toString();
  EXPECT_NE(text.find("baseline"), std::string::npos);
  EXPECT_NE(text.find("t_aoi"), std::string::npos);
  EXPECT_NE(text.find(std::to_string(report.baselineNMax1)), std::string::npos);
}

}  // namespace
}  // namespace roia::model
