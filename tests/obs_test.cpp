// Tests for the telemetry subsystem: log-bucketed histograms (bucket
// geometry, quantile error bound, merge), the metrics registry and its
// exporters, trace JSON well-formedness (monotone timestamps, matched B/E
// pairs), the RMS decision audit log, the pluggable logger sinks, and the
// zero-cost-observer invariant (telemetry on/off yields bit-identical
// simulations).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "game/bots.hpp"
#include "game/fps_app.hpp"
#include "obs/telemetry.hpp"
#include "rms/baseline_strategies.hpp"
#include "rms/manager.hpp"
#include "rtf/cluster.hpp"

namespace roia {
namespace {

// --- LogHistogram ---

TEST(LogHistogramTest, BucketBoundariesFollowGrowthFactor) {
  obs::LogHistogram h(obs::LogHistogram::Config{1.0, 16.0, 2.0});
  // [1,2) [2,4) [4,8) [8,16)
  ASSERT_EQ(h.bucketCount(), 4u);
  EXPECT_DOUBLE_EQ(h.bucketLow(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bucketHigh(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucketLow(3), 8.0);
  EXPECT_DOUBLE_EQ(h.bucketHigh(3), 16.0);

  h.add(1.5);
  h.add(2.5);
  h.add(3.0);
  h.add(12.0);
  EXPECT_EQ(h.bucketHits(0), 1u);
  EXPECT_EQ(h.bucketHits(1), 2u);
  EXPECT_EQ(h.bucketHits(2), 0u);
  EXPECT_EQ(h.bucketHits(3), 1u);

  h.add(0.5);    // below minValue
  h.add(-3.0);   // non-positive
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(16.0);   // at maxValue -> overflow
  h.add(1e9);
  EXPECT_EQ(h.underflow(), 3u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(), 9u);
}

TEST(LogHistogramTest, QuantilesWithinRelativeErrorBound) {
  obs::LogHistogram h;  // default config: growth 2^(1/8)
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  const double bound = h.config().growth - 1.0;  // ~9% worst case
  const std::vector<std::pair<double, double>> expected{{0.5, 500.0}, {0.95, 950.0}, {0.99, 990.0}};
  for (const auto& [q, exact] : expected) {
    const double estimate = h.quantile(q);
    EXPECT_NEAR(estimate / exact, 1.0, bound) << "q=" << q;
  }
  // Extremes clamp to the observed range.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
  EXPECT_DOUBLE_EQ(h.mean(), 500.5);
}

TEST(LogHistogramTest, MergeMatchesAddingAllSamples) {
  obs::LogHistogram a;
  obs::LogHistogram b;
  obs::LogHistogram both;
  for (int i = 1; i <= 100; ++i) {
    a.add(static_cast<double>(i));
    both.add(static_cast<double>(i));
  }
  for (int i = 500; i <= 600; ++i) {
    b.add(static_cast<double>(i));
    both.add(static_cast<double>(i));
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_DOUBLE_EQ(a.sum(), both.sum());
  EXPECT_DOUBLE_EQ(a.min(), both.min());
  EXPECT_DOUBLE_EQ(a.max(), both.max());
  EXPECT_DOUBLE_EQ(a.quantile(0.5), both.quantile(0.5));
  EXPECT_DOUBLE_EQ(a.quantile(0.95), both.quantile(0.95));

  obs::LogHistogram mismatched(obs::LogHistogram::Config{1.0, 100.0, 2.0});
  EXPECT_THROW(a.merge(mismatched), std::invalid_argument);
}

// --- MetricsRegistry ---

TEST(MetricsRegistryTest, InstrumentsAreStableAndLabelOrderInsensitive) {
  obs::MetricsRegistry registry;
  obs::Counter& c1 = registry.counter("ticks_total", {{"server", "1"}, {"zone", "a"}});
  obs::Counter& c2 = registry.counter("ticks_total", {{"zone", "a"}, {"server", "1"}});
  EXPECT_EQ(&c1, &c2);
  c1.increment(3);
  c1.setTotal(10);
  c1.setTotal(5);  // never moves backwards
  EXPECT_EQ(c1.value(), 10u);

  registry.gauge("load").set(0.5);
  registry.histogram("tick_ms").add(12.0);
  EXPECT_EQ(registry.size(), 3u);
  EXPECT_NE(registry.findCounter("ticks_total", {{"server", "1"}, {"zone", "a"}}), nullptr);
  EXPECT_EQ(registry.findCounter("ticks_total"), nullptr);
}

TEST(MetricsRegistryTest, ExportersEmitAllInstruments) {
  obs::MetricsRegistry registry;
  registry.counter("roia_frames_total", {{"server", "1"}}).increment(7);
  registry.gauge("roia_load").set(0.25);
  auto& h = registry.histogram("roia_tick_ms");
  h.add(10.0);
  h.add(20.0);

  std::ostringstream prom;
  registry.writePrometheus(prom);
  const std::string promText = prom.str();
  EXPECT_NE(promText.find("# TYPE roia_frames_total counter"), std::string::npos);
  EXPECT_NE(promText.find("roia_frames_total{server=\"1\"} 7"), std::string::npos);
  EXPECT_NE(promText.find("# TYPE roia_tick_ms summary"), std::string::npos);
  EXPECT_NE(promText.find("roia_tick_ms{quantile=\"0.95\"}"), std::string::npos);
  EXPECT_NE(promText.find("roia_tick_ms_count 2"), std::string::npos);

  std::ostringstream jsonl;
  registry.writeJsonl(jsonl);
  EXPECT_NE(jsonl.str().find("\"p95\":"), std::string::npos);
  EXPECT_NE(jsonl.str().find("\"kind\":\"gauge\""), std::string::npos);

  std::ostringstream csv;
  registry.writeCsv(csv);
  EXPECT_NE(csv.str().find("kind,name,labels,field,value"), std::string::npos);
  EXPECT_NE(csv.str().find("histogram,roia_tick_ms,,p95,"), std::string::npos);
}

// --- Tracer ---

std::vector<long long> timestampsInOrder(const std::string& json) {
  std::vector<long long> out;
  std::size_t pos = 0;
  while ((pos = json.find("\"ts\":", pos)) != std::string::npos) {
    pos += 5;
    out.push_back(std::stoll(json.substr(pos)));
  }
  return out;
}

std::size_t countOccurrences(const std::string& text, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = 0; (pos = text.find(needle, pos)) != std::string::npos; pos += needle.size()) {
    ++count;
  }
  return count;
}

TEST(TracerTest, JsonIsMonotoneWithMatchedBeginEndPairs) {
  obs::Tracer tracer;
  tracer.setEnabled(true);
  const std::uint32_t s1 = tracer.track("server-1");
  const std::uint32_t s2 = tracer.track("server-2");

  // server-1's span overruns past server-2's next span: appended out of
  // global ts order, the exporter must still emit non-decreasing ts.
  tracer.beginSpan(s1, SimTime{100}, "tick", "tick", {{"seq", "0"}});
  tracer.completeSpan(s1, SimTime{100}, SimDuration{500}, "phase", "phase");
  tracer.endSpan(s1, SimTime{600});
  tracer.beginSpan(s2, SimTime{300}, "tick", "tick");
  tracer.endSpan(s2, SimTime{350});
  tracer.flowStart(s1, SimTime{600}, obs::migrationFlowId(ClientId{9}), "migration", "migration");
  tracer.flowFinish(s2, SimTime{700}, obs::migrationFlowId(ClientId{9}), "migration", "migration");
  tracer.instant(s2, SimTime{800}, "crash-recovery", "rms");

  std::ostringstream out;
  tracer.writeJson(out);
  const std::string json = out.str();

  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(countOccurrences(json, "{"), countOccurrences(json, "}"));
  EXPECT_EQ(countOccurrences(json, "["), countOccurrences(json, "]"));
  EXPECT_EQ(countOccurrences(json, "\"ph\":\"B\""), countOccurrences(json, "\"ph\":\"E\""));
  EXPECT_EQ(countOccurrences(json, "\"ph\":\"M\""), 2u);  // two thread_name records
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);

  const std::vector<long long> ts = timestampsInOrder(json);
  ASSERT_EQ(ts.size(), 9u);  // 3 B/E pairs + 2 flow events + 1 instant
  for (std::size_t i = 1; i < ts.size(); ++i) {
    EXPECT_LE(ts[i - 1], ts[i]) << "timestamps regress at event " << i;
  }
}

TEST(TracerTest, DisabledTracerRecordsNothingAndCapCounts) {
  obs::Tracer tracer;
  tracer.beginSpan(0, SimTime{1}, "x", "y");
  EXPECT_EQ(tracer.eventCount(), 0u);

  tracer.setEnabled(true);
  tracer.setMaxEvents(2);
  for (int i = 0; i < 5; ++i) tracer.instant(0, SimTime{i}, "e", "c");
  EXPECT_EQ(tracer.eventCount(), 2u);
  EXPECT_EQ(tracer.droppedEvents(), 3u);
  std::ostringstream out;
  tracer.writeJson(out);
  EXPECT_NE(out.str().find("trace_truncated"), std::string::npos);
}

// --- AuditLog ---

TEST(AuditLogTest, RecordsOnlyWhenEnabledAndExportsJsonl) {
  obs::AuditLog log;
  obs::AuditRecord record;
  record.at = SimTime{} + SimDuration::seconds(2);
  record.zone = ZoneId{1};
  record.strategy = "model-driven";
  record.users = 120;
  record.npcs = 64;
  record.replicas = 2;
  record.predictedTickMs = 31.5;
  record.threshold = "eq2:n_trigger";
  record.action = "add_replica";
  record.rejected.push_back("remove_replica: users above hysteresis floor");
  record.rationale = "replication enactment";

  log.record(record);
  EXPECT_EQ(log.size(), 0u);  // disabled: no-op
  log.setEnabled(true);
  log.record(record);
  ASSERT_EQ(log.size(), 1u);

  const std::string json = obs::AuditLog::toJson(log.records().front());
  EXPECT_NE(json.find("\"threshold\":\"eq2:n_trigger\""), std::string::npos);
  EXPECT_NE(json.find("\"action\":\"add_replica\""), std::string::npos);
  EXPECT_NE(json.find("\"n\":120"), std::string::npos);
  EXPECT_NE(json.find("\"m\":64"), std::string::npos);
  EXPECT_NE(json.find("\"l\":2"), std::string::npos);
  std::ostringstream out;
  log.writeJsonl(out);
  EXPECT_EQ(countOccurrences(out.str(), "\n"), 1u);
}

// --- Logger sinks and component overrides ---

TEST(LoggerTest, MemorySinkAndComponentLevelOverrides) {
  auto sink = std::make_shared<MemorySink>();
  auto previous = Logger::setSink(sink);
  const LogLevel previousLevel = Logger::level();
  Logger::setLevel(LogLevel::kWarn);
  Logger::setComponentLevel("rms", LogLevel::kDebug);

  ROIA_LOG(LogLevel::kDebug, "rms", "debug visible for rms " << 42);
  ROIA_LOG(LogLevel::kDebug, "rtf.server", "suppressed");
  ROIA_LOG(LogLevel::kError, "rtf.server", "errors always pass");
  ROIA_LOG_KV(LogLevel::kWarn, "rms", "decision", {{"action", "add"}, {"n", "120"}});

  ASSERT_EQ(sink->count(), 3u);
  EXPECT_EQ(sink->entriesFor("rms").size(), 2u);
  EXPECT_EQ(sink->entries()[0].message, "debug visible for rms 42");
  EXPECT_EQ(sink->entries()[1].component, "rtf.server");
  ASSERT_EQ(sink->entries()[2].fields.size(), 2u);
  EXPECT_EQ(sink->entries()[2].fields[0].first, "action");

  Logger::clearComponentLevel("rms");
  ROIA_LOG(LogLevel::kDebug, "rms", "now suppressed");
  EXPECT_EQ(sink->count(), 3u);

  Logger::clearComponentLevels();
  Logger::setLevel(previousLevel);
  Logger::setSink(std::move(previous));
}

// --- Zero-cost observer: identical simulations with telemetry on/off ---

std::vector<double> runFingerprint(obs::Telemetry* telemetry) {
  game::FpsApplication app;
  rtf::ClusterConfig config;
  config.telemetry = telemetry;
  rtf::Cluster cluster(app, config);
  const ZoneId zone = cluster.createZone("arena");
  cluster.attachMonitoringCollector();
  cluster.addServer(zone);
  const ServerId second = cluster.addServer(zone);
  // NPCs in the zone exercise the census/NPC-update tick paths too.
  cluster.spawnNpcs(zone, 6);
  for (int i = 0; i < 12; ++i) {
    cluster.connectClient(zone, std::make_unique<game::BotProvider>());
  }
  cluster.run(SimDuration::seconds(2));
  // Force cross-server migration traffic (flow events on the traced run).
  const std::vector<ClientId> ids = cluster.clientIds();
  for (std::size_t i = 0; i < 2 && i < ids.size(); ++i) {
    cluster.migrateClient(ids[i], second);
  }
  cluster.run(SimDuration::seconds(1));

  std::vector<double> fingerprint;
  for (const ServerId id : cluster.serverIds()) {
    rtf::Server& server = cluster.server(id);
    fingerprint.push_back(static_cast<double>(server.tickCount()));
    const rtf::MonitoringSnapshot snapshot = server.monitoring();
    fingerprint.push_back(snapshot.tickAvgMs);
    fingerprint.push_back(snapshot.tickP95Ms);
    fingerprint.push_back(snapshot.tickMaxMs);
    fingerprint.push_back(snapshot.cpuLoad);
    const rtf::World::Census census = server.world().census(id);
    fingerprint.push_back(static_cast<double>(census.activeAvatars));
    fingerprint.push_back(static_cast<double>(census.totalAvatars));
    fingerprint.push_back(static_cast<double>(census.activeNpcs));
    fingerprint.push_back(static_cast<double>(census.totalNpcs));
    server.world().forEach([&](const rtf::EntityRecord& e) {
      fingerprint.push_back(e.position.x);
      fingerprint.push_back(e.position.y);
      fingerprint.push_back(e.health);
    });
  }
  return fingerprint;
}

TEST(TelemetryDeterminismTest, SimulationIsBitIdenticalWithTelemetryAttached) {
  obs::Telemetry telemetry;
  telemetry.tracer.setEnabled(true);
  telemetry.audit.setEnabled(true);

  const std::vector<double> traced = runFingerprint(&telemetry);
  const std::vector<double> plain = runFingerprint(nullptr);
  EXPECT_EQ(traced, plain);

  // The observer actually observed: tick spans and tick-duration samples.
  EXPECT_GT(telemetry.tracer.eventCount(), 0u);
  const obs::LogHistogram* tickHist =
      telemetry.metrics.findHistogram("roia_tick_duration_ms", {{"server", "1"}});
  ASSERT_NE(tickHist, nullptr);
  EXPECT_GT(tickHist->count(), 0u);
  // Migration flow events were recorded on both ends.
  std::ostringstream out;
  telemetry.tracer.writeJson(out);
  EXPECT_NE(out.str().find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(out.str().find("\"ph\":\"f\""), std::string::npos);
}

// --- RMS audit integration: decisions land in the audit log ---

TEST(RmsAuditTest, ControlPeriodsProduceAuditRecords) {
  obs::Telemetry telemetry;
  telemetry.audit.setEnabled(true);
  telemetry.tracer.setEnabled(true);

  game::FpsApplication app;
  rtf::ClusterConfig clusterConfig;
  clusterConfig.telemetry = &telemetry;
  rtf::Cluster cluster(app, clusterConfig);
  const ZoneId zone = cluster.createZone("arena");
  cluster.addServer(zone);
  for (int i = 0; i < 8; ++i) {
    cluster.connectClient(zone, std::make_unique<game::BotProvider>());
  }

  rms::StaticStrategyConfig strategyConfig;
  rms::RmsManager manager(cluster, zone,
                          std::make_unique<rms::StaticIntervalStrategy>(strategyConfig),
                          rms::ResourcePool{}, rms::RmsConfig{});
  manager.start();
  cluster.run(SimDuration::seconds(3));
  manager.stop();

  ASSERT_GE(telemetry.audit.size(), 2u);
  const obs::AuditRecord& record = telemetry.audit.records().front();
  EXPECT_EQ(record.strategy, "static-interval");
  EXPECT_EQ(record.zone, zone);
  EXPECT_EQ(record.users, 8u);
  EXPECT_EQ(record.replicas, 1u);
  // RMS control periods appear as spans on their own track.
  std::ostringstream out;
  telemetry.tracer.writeJson(out);
  EXPECT_NE(out.str().find("control-period"), std::string::npos);
}

}  // namespace
}  // namespace roia
