// Tests for the telemetry subsystem: log-bucketed histograms (bucket
// geometry, quantile error bound, merge), the metrics registry and its
// exporters, trace JSON well-formedness (monotone timestamps, matched B/E
// pairs), the RMS decision audit log, the pluggable logger sinks, and the
// zero-cost-observer invariant (telemetry on/off yields bit-identical
// simulations).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "game/bots.hpp"
#include "game/fps_app.hpp"
#include "obs/telemetry.hpp"
#include "rms/baseline_strategies.hpp"
#include "rms/manager.hpp"
#include "rtf/cluster.hpp"

namespace roia {
namespace {

// --- LogHistogram ---

TEST(LogHistogramTest, BucketBoundariesFollowGrowthFactor) {
  obs::LogHistogram h(obs::LogHistogram::Config{1.0, 16.0, 2.0});
  // [1,2) [2,4) [4,8) [8,16)
  ASSERT_EQ(h.bucketCount(), 4u);
  EXPECT_DOUBLE_EQ(h.bucketLow(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bucketHigh(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucketLow(3), 8.0);
  EXPECT_DOUBLE_EQ(h.bucketHigh(3), 16.0);

  h.add(1.5);
  h.add(2.5);
  h.add(3.0);
  h.add(12.0);
  EXPECT_EQ(h.bucketHits(0), 1u);
  EXPECT_EQ(h.bucketHits(1), 2u);
  EXPECT_EQ(h.bucketHits(2), 0u);
  EXPECT_EQ(h.bucketHits(3), 1u);

  h.add(0.5);    // below minValue
  h.add(-3.0);   // non-positive
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(16.0);   // at maxValue -> overflow
  h.add(1e9);
  EXPECT_EQ(h.underflow(), 3u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(), 9u);
}

TEST(LogHistogramTest, QuantilesWithinRelativeErrorBound) {
  obs::LogHistogram h;  // default config: growth 2^(1/8)
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  const double bound = h.config().growth - 1.0;  // ~9% worst case
  const std::vector<std::pair<double, double>> expected{{0.5, 500.0}, {0.95, 950.0}, {0.99, 990.0}};
  for (const auto& [q, exact] : expected) {
    const double estimate = h.quantile(q);
    EXPECT_NEAR(estimate / exact, 1.0, bound) << "q=" << q;
  }
  // Extremes clamp to the observed range.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
  EXPECT_DOUBLE_EQ(h.mean(), 500.5);
}

TEST(LogHistogramTest, MergeMatchesAddingAllSamples) {
  obs::LogHistogram a;
  obs::LogHistogram b;
  obs::LogHistogram both;
  for (int i = 1; i <= 100; ++i) {
    a.add(static_cast<double>(i));
    both.add(static_cast<double>(i));
  }
  for (int i = 500; i <= 600; ++i) {
    b.add(static_cast<double>(i));
    both.add(static_cast<double>(i));
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_DOUBLE_EQ(a.sum(), both.sum());
  EXPECT_DOUBLE_EQ(a.min(), both.min());
  EXPECT_DOUBLE_EQ(a.max(), both.max());
  EXPECT_DOUBLE_EQ(a.quantile(0.5), both.quantile(0.5));
  EXPECT_DOUBLE_EQ(a.quantile(0.95), both.quantile(0.95));

  obs::LogHistogram mismatched(obs::LogHistogram::Config{1.0, 100.0, 2.0});
  EXPECT_THROW(a.merge(mismatched), std::invalid_argument);
}

TEST(LogHistogramTest, EmptyAndSingleSampleQuantilesAreWellDefined) {
  const obs::LogHistogram empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(0.95), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(empty.min(), 0.0);
  EXPECT_DOUBLE_EQ(empty.max(), 0.0);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);

  obs::LogHistogram single;
  single.add(3.25);
  for (const double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(single.quantile(q), 3.25) << "q=" << q;
  }
}

TEST(LogHistogramTest, ExactBucketBoundarySamplesLandInOwningBucket) {
  // Power-of-two edges: each boundary is the low edge of its own bucket.
  obs::LogHistogram h(obs::LogHistogram::Config{1.0, 16.0, 2.0});
  h.add(1.0);
  h.add(2.0);
  h.add(4.0);
  h.add(8.0);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(h.bucketHits(i), 1u) << "bucket " << i;
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);

  // Irrational edges (growth 1.1): log-ratio rounding can land an ulp on
  // either side of the integer; the pow-computed edge must still own the
  // sample.
  obs::LogHistogram g(obs::LogHistogram::Config{1e-3, 1e3, 1.1});
  for (const std::size_t i : {std::size_t{1}, std::size_t{7}, std::size_t{23}, std::size_t{60}}) {
    g.add(g.bucketLow(i));
    EXPECT_EQ(g.bucketHits(i), 1u) << "bucket " << i;
  }
  EXPECT_EQ(g.underflow(), 0u);
  EXPECT_EQ(g.overflow(), 0u);
}

TEST(LogHistogramTest, NonFiniteSamplesDoNotPoisonMoments) {
  obs::LogHistogram h;
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.underflow(), 2u);  // NaN and -inf
  EXPECT_EQ(h.overflow(), 1u);   // +inf
  EXPECT_FALSE(std::isnan(h.quantile(0.5)));
  EXPECT_FALSE(std::isnan(h.sum()));

  h.add(5.0);
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_DOUBLE_EQ(h.sum(), 5.0);
  EXPECT_FALSE(std::isnan(h.quantile(0.95)));
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5.0);
}

// --- MetricsRegistry ---

TEST(MetricsRegistryTest, InstrumentsAreStableAndLabelOrderInsensitive) {
  obs::MetricsRegistry registry;
  obs::Counter& c1 = registry.counter("ticks_total", {{"server", "1"}, {"zone", "a"}});
  obs::Counter& c2 = registry.counter("ticks_total", {{"zone", "a"}, {"server", "1"}});
  EXPECT_EQ(&c1, &c2);
  c1.increment(3);
  c1.setTotal(10);
  c1.setTotal(5);  // never moves backwards
  EXPECT_EQ(c1.value(), 10u);

  registry.gauge("load").set(0.5);
  registry.histogram("tick_ms").add(12.0);
  EXPECT_EQ(registry.size(), 3u);
  EXPECT_NE(registry.findCounter("ticks_total", {{"server", "1"}, {"zone", "a"}}), nullptr);
  EXPECT_EQ(registry.findCounter("ticks_total"), nullptr);
}

TEST(MetricsRegistryTest, ExportersEmitAllInstruments) {
  obs::MetricsRegistry registry;
  registry.counter("roia_frames_total", {{"server", "1"}}).increment(7);
  registry.gauge("roia_load").set(0.25);
  auto& h = registry.histogram("roia_tick_ms");
  h.add(10.0);
  h.add(20.0);

  std::ostringstream prom;
  registry.writePrometheus(prom);
  const std::string promText = prom.str();
  EXPECT_NE(promText.find("# TYPE roia_frames_total counter"), std::string::npos);
  EXPECT_NE(promText.find("roia_frames_total{server=\"1\"} 7"), std::string::npos);
  EXPECT_NE(promText.find("# TYPE roia_tick_ms summary"), std::string::npos);
  EXPECT_NE(promText.find("roia_tick_ms{quantile=\"0.95\"}"), std::string::npos);
  EXPECT_NE(promText.find("roia_tick_ms_count 2"), std::string::npos);

  std::ostringstream jsonl;
  registry.writeJsonl(jsonl);
  EXPECT_NE(jsonl.str().find("\"p95\":"), std::string::npos);
  EXPECT_NE(jsonl.str().find("\"kind\":\"gauge\""), std::string::npos);

  std::ostringstream csv;
  registry.writeCsv(csv);
  EXPECT_NE(csv.str().find("kind,name,labels,field,value"), std::string::npos);
  EXPECT_NE(csv.str().find("histogram,roia_tick_ms,,p95,"), std::string::npos);
}

// --- Tracer ---

std::vector<long long> timestampsInOrder(const std::string& json) {
  std::vector<long long> out;
  std::size_t pos = 0;
  while ((pos = json.find("\"ts\":", pos)) != std::string::npos) {
    pos += 5;
    out.push_back(std::stoll(json.substr(pos)));
  }
  return out;
}

std::size_t countOccurrences(const std::string& text, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = 0; (pos = text.find(needle, pos)) != std::string::npos; pos += needle.size()) {
    ++count;
  }
  return count;
}

TEST(TracerTest, JsonIsMonotoneWithMatchedBeginEndPairs) {
  obs::Tracer tracer;
  tracer.setEnabled(true);
  const std::uint32_t s1 = tracer.track("server-1");
  const std::uint32_t s2 = tracer.track("server-2");

  // server-1's span overruns past server-2's next span: appended out of
  // global ts order, the exporter must still emit non-decreasing ts.
  tracer.beginSpan(s1, SimTime{100}, "tick", "tick", {{"seq", "0"}});
  tracer.completeSpan(s1, SimTime{100}, SimDuration{500}, "phase", "phase");
  tracer.endSpan(s1, SimTime{600});
  tracer.beginSpan(s2, SimTime{300}, "tick", "tick");
  tracer.endSpan(s2, SimTime{350});
  tracer.flowStart(s1, SimTime{600}, obs::migrationFlowId(ClientId{9}), "migration", "migration");
  tracer.flowFinish(s2, SimTime{700}, obs::migrationFlowId(ClientId{9}), "migration", "migration");
  tracer.instant(s2, SimTime{800}, "crash-recovery", "rms");

  std::ostringstream out;
  tracer.writeJson(out);
  const std::string json = out.str();

  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(countOccurrences(json, "{"), countOccurrences(json, "}"));
  EXPECT_EQ(countOccurrences(json, "["), countOccurrences(json, "]"));
  EXPECT_EQ(countOccurrences(json, "\"ph\":\"B\""), countOccurrences(json, "\"ph\":\"E\""));
  EXPECT_EQ(countOccurrences(json, "\"ph\":\"M\""), 2u);  // two thread_name records
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);

  const std::vector<long long> ts = timestampsInOrder(json);
  ASSERT_EQ(ts.size(), 9u);  // 3 B/E pairs + 2 flow events + 1 instant
  for (std::size_t i = 1; i < ts.size(); ++i) {
    EXPECT_LE(ts[i - 1], ts[i]) << "timestamps regress at event " << i;
  }
}

TEST(TracerTest, DisabledTracerRecordsNothingAndCapCounts) {
  obs::Tracer tracer;
  tracer.beginSpan(0, SimTime{1}, "x", "y");
  EXPECT_EQ(tracer.eventCount(), 0u);

  tracer.setEnabled(true);
  tracer.setMaxEvents(2);
  for (int i = 0; i < 5; ++i) tracer.instant(0, SimTime{i}, "e", "c");
  EXPECT_EQ(tracer.eventCount(), 2u);
  EXPECT_EQ(tracer.droppedEvents(), 3u);
  std::ostringstream out;
  tracer.writeJson(out);
  EXPECT_NE(out.str().find("trace_truncated"), std::string::npos);
}

// --- AuditLog ---

TEST(AuditLogTest, RecordsOnlyWhenEnabledAndExportsJsonl) {
  obs::AuditLog log;
  obs::AuditRecord record;
  record.at = SimTime{} + SimDuration::seconds(2);
  record.zone = ZoneId{1};
  record.strategy = "model-driven";
  record.users = 120;
  record.npcs = 64;
  record.replicas = 2;
  record.predictedTickMs = 31.5;
  record.threshold = "eq2:n_trigger";
  record.action = "add_replica";
  record.rejected.push_back("remove_replica: users above hysteresis floor");
  record.rationale = "replication enactment";

  log.record(record);
  EXPECT_EQ(log.size(), 0u);  // disabled: no-op
  log.setEnabled(true);
  log.record(record);
  ASSERT_EQ(log.size(), 1u);

  const std::string json = obs::AuditLog::toJson(log.records().front());
  EXPECT_NE(json.find("\"threshold\":\"eq2:n_trigger\""), std::string::npos);
  EXPECT_NE(json.find("\"action\":\"add_replica\""), std::string::npos);
  EXPECT_NE(json.find("\"n\":120"), std::string::npos);
  EXPECT_NE(json.find("\"m\":64"), std::string::npos);
  EXPECT_NE(json.find("\"l\":2"), std::string::npos);
  std::ostringstream out;
  log.writeJsonl(out);
  EXPECT_EQ(countOccurrences(out.str(), "\n"), 1u);
}

// --- Logger sinks and component overrides ---

TEST(LoggerTest, MemorySinkAndComponentLevelOverrides) {
  auto sink = std::make_shared<MemorySink>();
  auto previous = Logger::setSink(sink);
  const LogLevel previousLevel = Logger::level();
  Logger::setLevel(LogLevel::kWarn);
  Logger::setComponentLevel("rms", LogLevel::kDebug);

  ROIA_LOG(LogLevel::kDebug, "rms", "debug visible for rms " << 42);
  ROIA_LOG(LogLevel::kDebug, "rtf.server", "suppressed");
  ROIA_LOG(LogLevel::kError, "rtf.server", "errors always pass");
  ROIA_LOG_KV(LogLevel::kWarn, "rms", "decision", {{"action", "add"}, {"n", "120"}});

  ASSERT_EQ(sink->count(), 3u);
  EXPECT_EQ(sink->entriesFor("rms").size(), 2u);
  EXPECT_EQ(sink->entries()[0].message, "debug visible for rms 42");
  EXPECT_EQ(sink->entries()[1].component, "rtf.server");
  ASSERT_EQ(sink->entries()[2].fields.size(), 2u);
  EXPECT_EQ(sink->entries()[2].fields[0].first, "action");

  Logger::clearComponentLevel("rms");
  ROIA_LOG(LogLevel::kDebug, "rms", "now suppressed");
  EXPECT_EQ(sink->count(), 3u);

  Logger::clearComponentLevels();
  Logger::setLevel(previousLevel);
  Logger::setSink(std::move(previous));
}

// --- ProtocolTracker ---

TEST(ProtocolTrackerTest, StitchesBeginPhaseEndIntoLatencyAndOutcomes) {
  obs::MetricsRegistry metrics;
  obs::ProtocolTracker tracker;
  tracker.bindMetrics(&metrics);

  const std::uint64_t id = obs::protocolTraceId(3, 1);
  tracker.begin(obs::Protocol::kZoneHandoff, id, SimTime{0});
  EXPECT_EQ(tracker.openCount(), 1u);
  tracker.phase(obs::Protocol::kZoneHandoff, id, SimTime{40'000}, "transfer");
  const auto e2e =
      tracker.end(obs::Protocol::kZoneHandoff, id, SimTime{100'000}, obs::ProtocolOutcome::kCompleted);
  ASSERT_TRUE(e2e.has_value());
  EXPECT_DOUBLE_EQ(*e2e, 100.0);
  EXPECT_EQ(tracker.openCount(), 0u);
  EXPECT_EQ(tracker.outcomeCount(obs::Protocol::kZoneHandoff, obs::ProtocolOutcome::kCompleted), 1u);
  const obs::LogHistogram* hist = tracker.latencyHistogram(obs::Protocol::kZoneHandoff);
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), 1u);
  // The phase breakdown landed in the registry under the protocol+phase labels.
  const obs::LogHistogram* phase = metrics.findHistogram(
      "roia_protocol_phase_ms", {{"protocol", "zone_handoff"}, {"phase", "transfer"}});
  ASSERT_NE(phase, nullptr);
  EXPECT_EQ(phase->count(), 1u);

  // Unknown ids and protocol mismatches are ignored, not crashes.
  tracker.phase(obs::Protocol::kMigration, 999, SimTime{1}, "transfer");
  EXPECT_FALSE(
      tracker.end(obs::Protocol::kMigration, 999, SimTime{2}, obs::ProtocolOutcome::kCompleted)
          .has_value());

  // A duplicate begin supersedes the live instance instead of leaking it.
  const std::uint64_t dup = obs::protocolTraceId(3, 2);
  tracker.begin(obs::Protocol::kMigration, dup, SimTime{0});
  tracker.begin(obs::Protocol::kMigration, dup, SimTime{10'000});
  EXPECT_EQ(tracker.openCount(), 1u);
  EXPECT_EQ(tracker.outcomeCount(obs::Protocol::kMigration, obs::ProtocolOutcome::kSuperseded), 1u);
}

TEST(ProtocolTrackerTest, TraceIdFamiliesAreDisjoint) {
  // Allocator families must never collide across protocols (top-byte tag).
  EXPECT_NE(obs::protocolTraceId(1, 1), obs::drainTraceId(1, 1));
  EXPECT_NE(obs::protocolTraceId(1, 1), obs::recoveryTraceId(1, 1));
  EXPECT_NE(obs::drainTraceId(1, 1), obs::recoveryTraceId(1, 1));
  EXPECT_NE(obs::protocolTraceId(1, 1), obs::admissionTraceId(1));
  EXPECT_NE(obs::protocolTraceId(1, 2), obs::protocolTraceId(2, 1));
}

// --- SloEngine ---

TEST(SloEngineTest, MultiWindowBurnRateFiresOnceThenCoolsDown) {
  obs::SloEngine engine;
  obs::SloObjective objective;
  objective.name = "tick_time";
  objective.threshold = 10.0;
  objective.target = 0.9;
  objective.shortWindow = SimDuration::seconds(1);
  objective.longWindow = SimDuration::seconds(5);
  objective.fastBurn = 2.0;
  objective.slowBurn = 1.0;
  objective.minSamples = 4;
  objective.cooldown = SimDuration::seconds(10);
  const std::size_t handle = engine.addObjective(objective);
  EXPECT_EQ(engine.findHandle("tick_time"), std::optional<std::size_t>{handle});

  // Good samples never breach.
  SimTime t{0};
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(engine.record(handle, "server-1", 5.0, t).has_value());
    t = t + SimDuration::milliseconds(100);
  }
  // A run of bad samples breaches exactly once (cooldown re-arms later).
  std::size_t breachesSeen = 0;
  obs::SloBreach lastBreach;
  for (int i = 0; i < 12; ++i) {
    if (const auto breach = engine.record(handle, "server-1", 50.0, t)) {
      ++breachesSeen;
      lastBreach = *breach;
    }
    t = t + SimDuration::milliseconds(100);
  }
  EXPECT_EQ(breachesSeen, 1u);
  EXPECT_EQ(engine.breachCount(), 1u);
  EXPECT_EQ(lastBreach.objective, "tick_time");
  EXPECT_EQ(lastBreach.key, "server-1");
  EXPECT_GE(lastBreach.shortBurn, objective.fastBurn);
  EXPECT_GE(lastBreach.longBurn, objective.slowBurn);

  // Keys are independent: a different server starts clean.
  EXPECT_FALSE(engine.record(handle, "server-2", 50.0, t).has_value());
}

TEST(SloEngineTest, LowerBoundObjectiveTreatsSmallValuesAsBad) {
  obs::SloEngine engine;
  obs::SloObjective objective;
  objective.name = "update_rate";
  objective.threshold = 25.0;
  objective.upperBound = false;  // rate must stay >= 25 Hz
  objective.target = 0.9;
  objective.shortWindow = SimDuration::seconds(1);
  objective.longWindow = SimDuration::seconds(2);
  objective.fastBurn = 1.0;
  objective.slowBurn = 1.0;
  objective.minSamples = 2;
  objective.cooldown = SimDuration::seconds(60);
  const std::size_t handle = engine.addObjective(objective);

  SimTime t{0};
  std::size_t breaches = 0;
  for (int i = 0; i < 6; ++i) {
    if (engine.record(handle, "server-1", 12.5, t)) ++breaches;
    t = t + SimDuration::milliseconds(100);
  }
  EXPECT_EQ(breaches, 1u);

  std::ostringstream out;
  engine.writeJsonl(out);
  EXPECT_NE(out.str().find("\"objective\":\"update_rate\""), std::string::npos);
  EXPECT_NE(out.str().find("\"bound\":\"lower\""), std::string::npos);
}

// --- DriftMonitor ---

TEST(DriftMonitorTest, FiresWhenWindowedRelativeErrorLeavesBand) {
  obs::DriftMonitor monitor;
  obs::DriftConfig config;
  config.relErrorBand = 0.3;
  config.windowSamples = 8;
  config.minSamples = 8;
  config.cooldown = SimDuration::seconds(60);
  monitor.setConfig(config);

  SimTime t{0};
  // Accurate predictions: residuals recorded, no event.
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(monitor.record("server-1", 10.0, 10.5, t).has_value());
    t = t + SimDuration::milliseconds(100);
  }
  EXPECT_EQ(monitor.sampleCount("server-1"), 8u);
  ASSERT_NE(monitor.residualHistogram("server-1"), nullptr);
  EXPECT_EQ(monitor.residualHistogram("server-1")->count(), 8u);

  // Predictions drift to 2x off: the windowed mean crosses the band once.
  std::size_t events = 0;
  obs::DriftEvent lastEvent;
  for (int i = 0; i < 8; ++i) {
    if (const auto event = monitor.record("server-1", 10.0, 20.0, t)) {
      ++events;
      lastEvent = *event;
    }
    t = t + SimDuration::milliseconds(100);
  }
  EXPECT_EQ(events, 1u);
  EXPECT_EQ(monitor.driftEventCount(), 1u);
  EXPECT_EQ(lastEvent.key, "server-1");
  EXPECT_GT(lastEvent.windowMeanAbsRelError, config.relErrorBand);

  // Non-finite inputs are rejected without corrupting state.
  EXPECT_FALSE(monitor
                   .record("server-1", std::numeric_limits<double>::quiet_NaN(), 10.0, t)
                   .has_value());
  EXPECT_EQ(monitor.sampleCount("server-1"), 16u);
  EXPECT_GT(monitor.residualCov("server-1"), 0.0);
}

// --- FlightRecorder ---

TEST(FlightRecorderTest, RingBoundsFramesAndDumpFreezesEveryKey) {
  obs::FlightRecorder recorder;
  recorder.setCapacity(4);

  obs::FlightFrame frame;
  for (std::uint64_t i = 0; i < 10; ++i) {
    frame.tick = i;
    frame.atMicros = static_cast<std::int64_t>(i) * 1000;
    frame.durationMs = 1.0;
    recorder.recordTick("server-1", frame);
  }
  EXPECT_EQ(recorder.frameCount("server-1"), 4u);  // ring kept the last 4
  frame.tick = 3;
  recorder.recordTick("server-2", frame);
  recorder.note("server-2", SimTime{9000}, "crash");

  recorder.dump("crash:server-2", SimTime{9500});
  EXPECT_EQ(recorder.dumpCount(), 1u);

  std::ostringstream out;
  recorder.writeJsonl(out);
  const std::string jsonl = out.str();
  EXPECT_NE(jsonl.find("\"reason\":\"crash:server-2\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"event\":\"crash\""), std::string::npos);
  // Both keys are present in the dump, and evicted frames are not.
  EXPECT_NE(jsonl.find("\"key\":\"server-1\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"key\":\"server-2\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"tick\":6"), std::string::npos);   // oldest surviving frame
  EXPECT_EQ(jsonl.find("\"tick\":5,"), std::string::npos);  // evicted

  // The dump cap counts, not stores, extra triggers.
  recorder.setMaxDumps(2);
  recorder.dump("second", SimTime{9600});
  recorder.dump("third", SimTime{9700});
  EXPECT_EQ(recorder.dumpCount(), 2u);
  EXPECT_EQ(recorder.droppedDumps(), 1u);
}

// --- Zero-cost observer: identical simulations with telemetry on/off ---

std::vector<double> runFingerprint(obs::Telemetry* telemetry) {
  game::FpsApplication app;
  rtf::ClusterConfig config;
  config.telemetry = telemetry;
  rtf::Cluster cluster(app, config);
  const ZoneId zone = cluster.createZone("arena");
  cluster.attachMonitoringCollector();
  // A pure tick-time predictor exercises the drift monitor on the traced
  // run without perturbing either timeline.
  cluster.setTickPredictor([](std::size_t users, std::size_t avatars, std::size_t npcs) {
    return 0.01 + 0.001 * static_cast<double>(users + avatars + npcs);
  });
  cluster.addServer(zone);
  const ServerId second = cluster.addServer(zone);
  // NPCs in the zone exercise the census/NPC-update tick paths too.
  cluster.spawnNpcs(zone, 6);
  for (int i = 0; i < 12; ++i) {
    cluster.connectClient(zone, std::make_unique<game::BotProvider>());
  }
  cluster.run(SimDuration::seconds(2));
  // Force cross-server migration traffic (flow events on the traced run).
  const std::vector<ClientId> ids = cluster.clientIds();
  for (std::size_t i = 0; i < 2 && i < ids.size(); ++i) {
    cluster.migrateClient(ids[i], second);
  }
  cluster.run(SimDuration::seconds(1));

  std::vector<double> fingerprint;
  for (const ServerId id : cluster.serverIds()) {
    rtf::Server& server = cluster.server(id);
    fingerprint.push_back(static_cast<double>(server.tickCount()));
    const rtf::MonitoringSnapshot snapshot = server.monitoring();
    fingerprint.push_back(snapshot.tickAvgMs);
    fingerprint.push_back(snapshot.tickP95Ms);
    fingerprint.push_back(snapshot.tickMaxMs);
    fingerprint.push_back(snapshot.cpuLoad);
    const rtf::World::Census census = server.world().census(id);
    fingerprint.push_back(static_cast<double>(census.activeAvatars));
    fingerprint.push_back(static_cast<double>(census.totalAvatars));
    fingerprint.push_back(static_cast<double>(census.activeNpcs));
    fingerprint.push_back(static_cast<double>(census.totalNpcs));
    server.world().forEach([&](rtf::ConstEntityRef e) {
      fingerprint.push_back(e.position.x);
      fingerprint.push_back(e.position.y);
      fingerprint.push_back(e.health);
    });
  }
  return fingerprint;
}

TEST(TelemetryDeterminismTest, SimulationIsBitIdenticalWithTelemetryAttached) {
  obs::Telemetry telemetry;
  telemetry.tracer.setEnabled(true);
  telemetry.audit.setEnabled(true);
  // Full observability v2 surface: SLO objectives, drift monitor, protocol
  // tracker and flight recorder all observing.
  obs::installDefaultObjectives(telemetry.slo);

  const std::vector<double> traced = runFingerprint(&telemetry);
  const std::vector<double> plain = runFingerprint(nullptr);
  EXPECT_EQ(traced, plain);

  // The observer actually observed: tick spans and tick-duration samples.
  EXPECT_GT(telemetry.tracer.eventCount(), 0u);
  const obs::LogHistogram* tickHist =
      telemetry.metrics.findHistogram("roia_tick_duration_ms", {{"server", "1"}});
  ASSERT_NE(tickHist, nullptr);
  EXPECT_GT(tickHist->count(), 0u);
  // Migration flow events were recorded on both ends.
  std::ostringstream out;
  telemetry.tracer.writeJson(out);
  EXPECT_NE(out.str().find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(out.str().find("\"ph\":\"f\""), std::string::npos);
  // Protocol instances completed end-to-end across servers.
  EXPECT_GE(telemetry.protocols.outcomeCount(obs::Protocol::kMigration,
                                             obs::ProtocolOutcome::kCompleted),
            1u);
  // Eq.2 residuals accumulated per server, and the flight ring is rolling.
  EXPECT_GT(telemetry.drift.sampleCount("server-1"), 0u);
  EXPECT_GT(telemetry.flight.frameCount("server-1"), 0u);
}

// --- RMS audit integration: decisions land in the audit log ---

TEST(RmsAuditTest, ControlPeriodsProduceAuditRecords) {
  obs::Telemetry telemetry;
  telemetry.audit.setEnabled(true);
  telemetry.tracer.setEnabled(true);

  game::FpsApplication app;
  rtf::ClusterConfig clusterConfig;
  clusterConfig.telemetry = &telemetry;
  rtf::Cluster cluster(app, clusterConfig);
  const ZoneId zone = cluster.createZone("arena");
  cluster.addServer(zone);
  for (int i = 0; i < 8; ++i) {
    cluster.connectClient(zone, std::make_unique<game::BotProvider>());
  }

  rms::StaticStrategyConfig strategyConfig;
  rms::RmsManager manager(cluster, zone,
                          std::make_unique<rms::StaticIntervalStrategy>(strategyConfig),
                          rms::ResourcePool{}, rms::RmsConfig{});
  manager.start();
  cluster.run(SimDuration::seconds(3));
  manager.stop();

  ASSERT_GE(telemetry.audit.size(), 2u);
  const obs::AuditRecord& record = telemetry.audit.records().front();
  EXPECT_EQ(record.strategy, "static-interval");
  EXPECT_EQ(record.zone, zone);
  EXPECT_EQ(record.users, 8u);
  EXPECT_EQ(record.replicas, 1u);
  // RMS control periods appear as spans on their own track.
  std::ostringstream out;
  telemetry.tracer.writeJson(out);
  EXPECT_NE(out.str().find("control-period"), std::string::npos);
}

}  // namespace
}  // namespace roia
