// Integration tests of the RTF substrate: multi-server replication, state
// updates, forwarded inputs, the user-migration protocol, server lifecycle
// and whole-run determinism — all driven through the Cluster harness with
// the FPS demo application.
#include <gtest/gtest.h>

#include <memory>

#include "game/bots.hpp"
#include "game/commands.hpp"
#include "game/fps_app.hpp"
#include "game/state_update.hpp"
#include "rtf/cluster.hpp"

namespace roia::rtf {
namespace {

using game::BotProvider;
using game::CommandBatch;

/// Deterministic provider: always moves east; attacks a fixed target when
/// one is set.
class ScriptedProvider final : public InputProvider {
 public:
  std::vector<std::uint8_t> nextCommands(SimTime, Rng&) override {
    CommandBatch batch;
    batch.move = game::MoveCommand{{1.0, 0.0}};
    if (target_.valid()) {
      batch.attack = game::AttackCommand{target_, {1.0, 0.0}};
    }
    return encodeCommands(batch);
  }
  void onStateUpdate(std::span<const std::uint8_t> update) override {
    lastUpdate_ = game::decodeStateUpdate(update);
    ++updates_;
  }

  void setTarget(EntityId target) { target_ = target; }
  [[nodiscard]] const game::StateUpdatePayload& lastUpdate() const { return lastUpdate_; }
  [[nodiscard]] int updates() const { return updates_; }

 private:
  EntityId target_{};
  game::StateUpdatePayload lastUpdate_{};
  int updates_{0};
};

struct Fixture {
  game::FpsApplication app;
  Cluster cluster;
  ZoneId zone;

  explicit Fixture(std::uint64_t seed = 42, game::FpsConfig fps = {})
      : app(fps), cluster(app, ClusterConfig{ServerConfig{}, ClientEndpoint::Config{}, seed}) {
    zone = cluster.createZone("arena", fps.arenaOrigin, fps.arenaExtent);
  }

  static game::FpsConfig smallArena() {
    game::FpsConfig fps;
    fps.arenaExtent = {100, 100};  // everything within attack range
    return fps;
  }
};

TEST(ClusterTest, ServersStartAndTick) {
  Fixture f;
  const ServerId s = f.cluster.addServer(f.zone);
  f.cluster.run(SimDuration::seconds(1));
  EXPECT_TRUE(f.cluster.server(s).running());
  EXPECT_GE(f.cluster.server(s).tickCount(), 20u);  // ~25 ticks per second
  EXPECT_LE(f.cluster.server(s).tickCount(), 30u);
}

TEST(ClusterTest, ClientsReceiveStateUpdates) {
  Fixture f;
  f.cluster.addServer(f.zone);
  const ClientId c1 = f.cluster.connectClient(f.zone, std::make_unique<ScriptedProvider>());
  const ClientId c2 = f.cluster.connectClient(f.zone, std::make_unique<ScriptedProvider>());
  f.cluster.run(SimDuration::seconds(2));
  EXPECT_GT(f.cluster.client(c1).updatesReceived(), 30u);
  EXPECT_GT(f.cluster.client(c2).updatesReceived(), 30u);
}

TEST(ClusterTest, LeastLoadedConnectBalances) {
  Fixture f;
  const ServerId a = f.cluster.addServer(f.zone);
  const ServerId b = f.cluster.addServer(f.zone);
  for (int i = 0; i < 10; ++i) {
    f.cluster.connectClient(f.zone, std::make_unique<BotProvider>());
  }
  EXPECT_EQ(f.cluster.server(a).connectedUsers(), 5u);
  EXPECT_EQ(f.cluster.server(b).connectedUsers(), 5u);
  EXPECT_EQ(f.cluster.zoneUserCount(f.zone), 10u);
}

TEST(ClusterTest, ReplicationCreatesShadows) {
  Fixture f;
  const ServerId a = f.cluster.addServer(f.zone);
  const ServerId b = f.cluster.addServer(f.zone);
  for (int i = 0; i < 6; ++i) {
    f.cluster.connectClient(f.zone, std::make_unique<BotProvider>());
  }
  f.cluster.run(SimDuration::seconds(1));
  // Every replica sees the full zone population: 3 active + 3 shadow each.
  EXPECT_EQ(f.cluster.server(a).world().avatarCount(), 6u);
  EXPECT_EQ(f.cluster.server(b).world().avatarCount(), 6u);
  EXPECT_EQ(f.cluster.server(a).world().activeCount(a), 3u);
  EXPECT_EQ(f.cluster.server(b).world().activeCount(b), 3u);
}

TEST(ClusterTest, ShadowPositionsTrackActives) {
  Fixture f;
  const ServerId a = f.cluster.addServer(f.zone);
  const ServerId b = f.cluster.addServer(f.zone);
  const ClientId c = f.cluster.connectClientTo(a, std::make_unique<ScriptedProvider>());
  f.cluster.run(SimDuration::seconds(2));
  const EntityId avatar = f.cluster.client(c).avatar();
  const auto active = f.cluster.server(a).world().find(avatar);
  const auto shadow = f.cluster.server(b).world().find(avatar);
  ASSERT_TRUE(active.has_value());
  ASSERT_TRUE(shadow.has_value());
  EXPECT_FALSE(shadow->activeOn(b));
  // The avatar moved east at 80 units/s for ~2 s; the shadow must track it
  // closely (within one round of replication lag).
  EXPECT_GT(active->position.x, 150.0);
  EXPECT_NEAR(shadow->position.x, active->position.x, 25.0);
}

TEST(ClusterTest, ForwardedInputsDamageRemoteEntities) {
  Fixture f(42, Fixture::smallArena());
  const ServerId a = f.cluster.addServer(f.zone);
  const ServerId b = f.cluster.addServer(f.zone);
  auto attackerProvider = std::make_unique<ScriptedProvider>();
  ScriptedProvider* attacker = attackerProvider.get();
  const ClientId cAttacker = f.cluster.connectClientTo(a, std::move(attackerProvider));
  const ClientId cVictim = f.cluster.connectClientTo(b, std::make_unique<ScriptedProvider>());
  (void)cAttacker;
  f.cluster.run(SimDuration::milliseconds(300));  // let shadows appear

  const EntityId victim = f.cluster.client(cVictim).avatar();
  attacker->setTarget(victim);
  f.cluster.run(SimDuration::seconds(1));

  const auto victimRecord = f.cluster.server(b).world().find(victim);
  ASSERT_TRUE(victimRecord.has_value());
  // Attacks crossed servers; the victim must have taken damage on its owner
  // (health drops below spawn value 100, possibly after respawns).
  EXPECT_LT(victimRecord->health, 100.0);
  const MonitoringSnapshot monB = f.cluster.server(b).monitoring();
  EXPECT_GT(monB.phaseAvgMicros[static_cast<std::size_t>(Phase::kFa)], 0.0);
}

TEST(ClusterTest, MigrationMovesUserWithoutLoss) {
  Fixture f;
  const ServerId a = f.cluster.addServer(f.zone);
  const ServerId b = f.cluster.addServer(f.zone);
  std::vector<ClientId> clients;
  for (int i = 0; i < 8; ++i) {
    clients.push_back(f.cluster.connectClientTo(a, std::make_unique<BotProvider>()));
  }
  f.cluster.run(SimDuration::milliseconds(500));
  EXPECT_EQ(f.cluster.server(a).connectedUsers(), 8u);

  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(f.cluster.migrateClient(clients[static_cast<std::size_t>(i)], b));
  }
  f.cluster.run(SimDuration::seconds(1));

  EXPECT_EQ(f.cluster.server(a).connectedUsers(), 5u);
  EXPECT_EQ(f.cluster.server(b).connectedUsers(), 3u);
  EXPECT_EQ(f.cluster.zoneUserCount(f.zone), 8u);
  // Ownership moved: the migrated avatars are active on b everywhere.
  for (int i = 0; i < 3; ++i) {
    const ClientId c = clients[static_cast<std::size_t>(i)];
    EXPECT_EQ(f.cluster.clientServer(c), b);
    const EntityId avatar = f.cluster.client(c).avatar();
    const auto onB = f.cluster.server(b).world().find(avatar);
    ASSERT_TRUE(onB.has_value());
    EXPECT_TRUE(onB->activeOn(b));
  }
  // Migrated clients keep receiving updates from the new server.
  const std::uint64_t before = f.cluster.client(clients[0]).updatesReceived();
  f.cluster.run(SimDuration::seconds(1));
  EXPECT_GT(f.cluster.client(clients[0]).updatesReceived(), before + 10);
}

TEST(ClusterTest, MigrationChargesBothSides) {
  Fixture f;
  const ServerId a = f.cluster.addServer(f.zone);
  const ServerId b = f.cluster.addServer(f.zone);
  std::vector<ClientId> clients;
  for (int i = 0; i < 6; ++i) {
    clients.push_back(f.cluster.connectClientTo(a, std::make_unique<BotProvider>()));
  }
  f.cluster.run(SimDuration::milliseconds(500));
  f.cluster.migrateClient(clients[0], b);
  f.cluster.run(SimDuration::seconds(1));
  EXPECT_EQ(f.cluster.server(a).monitoring().migrationsInitiated, 1u);
  EXPECT_EQ(f.cluster.server(b).monitoring().migrationsReceived, 1u);
}

TEST(ClusterTest, MigrationRejectsInvalidRequests) {
  Fixture f;
  const ServerId a = f.cluster.addServer(f.zone);
  const ServerId b = f.cluster.addServer(f.zone);
  const ZoneId otherZone = f.cluster.createZone("other");
  const ServerId c = f.cluster.addServer(otherZone);
  const ClientId client = f.cluster.connectClientTo(a, std::make_unique<BotProvider>());

  EXPECT_FALSE(f.cluster.migrateClient(client, a));          // same server
  EXPECT_FALSE(f.cluster.migrateClient(client, c));          // cross-zone
  EXPECT_FALSE(f.cluster.migrateClient(ClientId{999}, b));   // unknown client
  EXPECT_TRUE(f.cluster.migrateClient(client, b));
  EXPECT_FALSE(f.cluster.migrateClient(client, b));  // already migrating
}

TEST(ClusterTest, DisconnectRemovesEverywhere) {
  Fixture f;
  const ServerId a = f.cluster.addServer(f.zone);
  const ServerId b = f.cluster.addServer(f.zone);
  const ClientId c = f.cluster.connectClientTo(a, std::make_unique<BotProvider>());
  f.cluster.run(SimDuration::milliseconds(500));
  const EntityId avatar = f.cluster.client(c).avatar();
  ASSERT_TRUE(f.cluster.server(b).world().find(avatar).has_value());  // shadow exists

  f.cluster.disconnectClient(c);
  f.cluster.run(SimDuration::milliseconds(500));
  EXPECT_FALSE(f.cluster.server(a).world().find(avatar).has_value());
  EXPECT_FALSE(f.cluster.server(b).world().find(avatar).has_value());  // shadow retired
  EXPECT_EQ(f.cluster.clientCount(), 0u);
}

TEST(ClusterTest, RemoveServerRequiresNoUsers) {
  Fixture f;
  const ServerId a = f.cluster.addServer(f.zone);
  const ServerId b = f.cluster.addServer(f.zone);
  const ClientId c = f.cluster.connectClientTo(b, std::make_unique<BotProvider>());
  EXPECT_THROW(f.cluster.removeServer(b), std::logic_error);
  f.cluster.migrateClient(c, a);
  f.cluster.run(SimDuration::seconds(1));
  EXPECT_NO_THROW(f.cluster.removeServer(b));
  EXPECT_FALSE(f.cluster.hasServer(b));
  EXPECT_EQ(f.cluster.zones().replicaCount(f.zone), 1u);
}

TEST(ClusterTest, RemoveServerHandsNpcsToSurvivor) {
  Fixture f;
  const ServerId a = f.cluster.addServer(f.zone);
  const ServerId b = f.cluster.addServer(f.zone);
  f.cluster.spawnNpcs(f.zone, 10);  // 5 on each replica
  EXPECT_EQ(f.cluster.server(a).world().npcCount(), 5u);
  f.cluster.removeServer(b);
  // All 10 NPCs now owned by a.
  EXPECT_EQ(f.cluster.server(a).world().countIf([&](ConstEntityRef e) {
              return e.isNpc() && e.owner == a;
            }),
            10u);
}

TEST(ClusterTest, NpcsSpawnDistributed) {
  Fixture f;
  const ServerId a = f.cluster.addServer(f.zone);
  const ServerId b = f.cluster.addServer(f.zone);
  const ServerId c = f.cluster.addServer(f.zone);
  f.cluster.spawnNpcs(f.zone, 9);
  EXPECT_EQ(f.cluster.server(a).world().countIf(
                [&](ConstEntityRef e) { return e.isNpc() && e.owner == a; }),
            3u);
  EXPECT_EQ(f.cluster.server(b).world().countIf(
                [&](ConstEntityRef e) { return e.isNpc() && e.owner == b; }),
            3u);
  EXPECT_EQ(f.cluster.server(c).world().countIf(
                [&](ConstEntityRef e) { return e.isNpc() && e.owner == c; }),
            3u);
}

TEST(ClusterTest, InstancingCreatesIndependentCopy) {
  Fixture f;
  f.cluster.addServer(f.zone);
  const ZoneId inst = f.cluster.createInstance(f.zone);
  EXPECT_NE(inst, f.zone);
  EXPECT_EQ(f.cluster.zones().zone(inst).instanceOf, f.zone);
  const ServerId s = f.cluster.addServer(inst);
  f.cluster.connectClient(inst, std::make_unique<BotProvider>());
  f.cluster.run(SimDuration::milliseconds(500));
  EXPECT_EQ(f.cluster.server(s).connectedUsers(), 1u);
  EXPECT_EQ(f.cluster.zoneUserCount(f.zone), 0u);
}

TEST(ClusterTest, MonitoringSnapshotFields) {
  Fixture f;
  const ServerId a = f.cluster.addServer(f.zone);
  for (int i = 0; i < 20; ++i) {
    f.cluster.connectClient(f.zone, std::make_unique<BotProvider>());
  }
  f.cluster.run(SimDuration::seconds(2));
  const MonitoringSnapshot snapshot = f.cluster.server(a).monitoring();
  EXPECT_EQ(snapshot.server, a);
  EXPECT_EQ(snapshot.zone, f.zone);
  EXPECT_EQ(snapshot.activeUsers, 20u);
  EXPECT_EQ(snapshot.totalAvatars, 20u);
  EXPECT_GT(snapshot.tickAvgMs, 0.0);
  EXPECT_GE(snapshot.tickMaxMs, snapshot.tickAvgMs);
  EXPECT_GT(snapshot.cpuLoad, 0.0);
  EXPECT_LT(snapshot.cpuLoad, 1.0);
  EXPECT_GT(snapshot.ticksObserved, 40u);
  EXPECT_GT(snapshot.phaseAvgMicros[static_cast<std::size_t>(Phase::kAoi)], 0.0);
}

TEST(ClusterTest, OverloadStretchesTicks) {
  // One reference-speed server with far more users than n_max(1): each tick
  // costs more than the 40 ms interval, so fewer ticks fit per second and
  // the CPU account saturates.
  Fixture f;
  const ServerId a = f.cluster.addServer(f.zone);
  for (int i = 0; i < 500; ++i) {
    f.cluster.connectClientTo(a, std::make_unique<BotProvider>());
  }
  f.cluster.run(SimDuration::seconds(3));
  const MonitoringSnapshot snapshot = f.cluster.server(a).monitoring();
  EXPECT_GT(snapshot.tickAvgMs, 40.0);
  EXPECT_NEAR(f.cluster.server(a).cpuAccount().load(), 1.0, 1e-9);
  // Tick rate degraded below 25 Hz.
  EXPECT_LT(f.cluster.server(a).tickCount(), 70u);
}

TEST(ClusterTest, FasterServerHasShorterTicks) {
  Fixture slow(7), fast(7);
  const ServerId sSlow = slow.cluster.addServer(slow.zone, 1.0);
  const ServerId sFast = fast.cluster.addServer(fast.zone, 2.0);
  for (int i = 0; i < 100; ++i) {
    slow.cluster.connectClient(slow.zone, std::make_unique<BotProvider>());
    fast.cluster.connectClient(fast.zone, std::make_unique<BotProvider>());
  }
  slow.cluster.run(SimDuration::seconds(2));
  fast.cluster.run(SimDuration::seconds(2));
  const double slowTick = slow.cluster.server(sSlow).monitoring().tickAvgMs;
  const double fastTick = fast.cluster.server(sFast).monitoring().tickAvgMs;
  EXPECT_GT(slowTick, 0.0);
  EXPECT_NEAR(fastTick, slowTick / 2.0, slowTick * 0.2);
}

TEST(ClusterTest, RunsAreDeterministicPerSeed) {
  auto runOnce = [](std::uint64_t seed) {
    Fixture f(seed);
    const ServerId a = f.cluster.addServer(f.zone);
    f.cluster.addServer(f.zone);
    std::vector<ClientId> clients;
    for (int i = 0; i < 30; ++i) {
      clients.push_back(f.cluster.connectClient(f.zone, std::make_unique<BotProvider>()));
    }
    f.cluster.run(SimDuration::seconds(2));
    const MonitoringSnapshot snapshot = f.cluster.server(a).monitoring();
    return std::tuple{snapshot.tickAvgMs, snapshot.totalAvatars,
                      f.cluster.client(clients[0]).updatesReceived(),
                      f.cluster.network().totals().bytes};
  };
  const auto run1 = runOnce(123);
  const auto run2 = runOnce(123);
  const auto run3 = runOnce(456);
  EXPECT_EQ(run1, run2);
  EXPECT_NE(std::get<3>(run1), std::get<3>(run3));
}

TEST(ClusterTest, LateJoiningReplicaLearnsExistingEntities) {
  Fixture f;
  f.cluster.addServer(f.zone);
  for (int i = 0; i < 10; ++i) {
    f.cluster.connectClient(f.zone, std::make_unique<BotProvider>());
  }
  f.cluster.run(SimDuration::seconds(1));
  const ServerId late = f.cluster.addServer(f.zone);
  f.cluster.run(SimDuration::milliseconds(300));
  // The late replica received shadows for all 10 avatars via replica sync.
  EXPECT_EQ(f.cluster.server(late).world().avatarCount(), 10u);
  EXPECT_EQ(f.cluster.server(late).connectedUsers(), 0u);
}

}  // namespace
}  // namespace roia::rtf
