// Overload-survival suite (ctest -L overload): the per-server degradation
// ladder and its hysteresis, admission control with scenario-layer retry,
// preemption notices answered by the RMS graceful drain (including a window
// expiring mid-handoff), the stale-MigrationAck crash regression, and
// seeded retransmit jitter on the reliable control plane.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <tuple>
#include <vector>

#include "game/bots.hpp"
#include "game/fps_app.hpp"
#include "game/scenario.hpp"
#include "net/fault.hpp"
#include "net/network.hpp"
#include "rms/overload_session.hpp"
#include "rtf/cluster.hpp"
#include "rtf/overload.hpp"
#include "rtf/reliable.hpp"
#include "sim/simulation.hpp"

namespace roia {
namespace {

std::unique_ptr<game::BotProvider> bot() {
  return std::make_unique<game::BotProvider>(game::BotConfig{});
}

// ---------- degradation ladder ----------

TEST(OverloadLadderTest, StepsDownUnderLoadAndRecoversWithHysteresis) {
  game::FpsApplication app;
  rtf::ServerConfig serverConfig;
  serverConfig.overload.enabled = true;
  serverConfig.overload.budgetMs = 5.0;
  serverConfig.overload.stepDownAfterTicks = 3;
  serverConfig.overload.stepUpAfterTicks = 8;
  rtf::Cluster cluster(app, rtf::ClusterConfig{serverConfig, {}, 42, nullptr});
  const ZoneId zone = cluster.createZone("z");
  const ServerId sid = cluster.addServer(zone);

  double predicted = 100.0;  // way past the 5 ms budget
  cluster.setTickPredictor(
      [&predicted](std::size_t, std::size_t, std::size_t) { return predicted; });
  for (int i = 0; i < 6; ++i) cluster.connectClient(zone, bot());

  // 25 ticks at 3 over-budget ticks per step: the ladder bottoms out.
  cluster.run(SimDuration::seconds(1));
  const rtf::Server& server = cluster.server(sid);
  EXPECT_EQ(server.overloadLevel(), rtf::kShedLevel);
  EXPECT_GE(server.overloadStepDowns(), rtf::kOverloadLevels - 1);
  // Deepest level sheds lowest-priority observers (never below one served).
  EXPECT_GT(server.shedObservers(), 0u);
  EXPECT_LT(server.shedObservers(), server.connectedUsers());
  EXPECT_GE(server.shedEvents(), 1u);
  // The ladder level is exported with the monitoring snapshot.
  EXPECT_EQ(server.monitoring().degradationLevel, server.overloadLevel());
  EXPECT_EQ(server.monitoring().shedObservers, server.shedObservers());

  // Load vanishes. Hysteresis: 5 under-budget ticks are not enough to step
  // back up (stepUpAfterTicks = 8), so the level must hold first...
  predicted = 0.1;
  cluster.run(SimDuration::milliseconds(200));
  EXPECT_EQ(server.overloadLevel(), rtf::kShedLevel);

  // ...then climb back to full fidelity one level per 8 calm ticks, and the
  // shed observers are readmitted.
  cluster.run(SimDuration::seconds(2));
  EXPECT_EQ(server.overloadLevel(), 0u);
  EXPECT_EQ(server.shedObservers(), 0u);
  EXPECT_GE(server.readmitEvents(), 1u);
  EXPECT_GE(server.overloadStepUps(), rtf::kOverloadLevels - 1);
}

TEST(OverloadLadderTest, DisabledLadderNeverMoves) {
  game::FpsApplication app;
  rtf::ServerConfig serverConfig;  // overload.enabled defaults to false
  rtf::Cluster cluster(app, rtf::ClusterConfig{serverConfig, {}, 42, nullptr});
  const ZoneId zone = cluster.createZone("z");
  const ServerId sid = cluster.addServer(zone);
  cluster.setTickPredictor([](std::size_t, std::size_t, std::size_t) { return 1000.0; });
  for (int i = 0; i < 4; ++i) cluster.connectClient(zone, bot());
  cluster.run(SimDuration::seconds(1));
  EXPECT_EQ(cluster.server(sid).overloadLevel(), 0u);
  EXPECT_EQ(cluster.server(sid).overloadStepDowns(), 0u);
  EXPECT_EQ(cluster.server(sid).shedObservers(), 0u);
}

TEST(OverloadLadderTest, ShedThenReadmitIsDeterministic) {
  // Two identical runs through a full shed-then-readmit cycle must agree
  // counter for counter (the ladder draws no randomness).
  const auto runOnce = [] {
    game::FpsApplication app;
    rtf::ServerConfig serverConfig;
    serverConfig.overload.enabled = true;
    serverConfig.overload.budgetMs = 5.0;
    serverConfig.overload.stepDownAfterTicks = 2;
    serverConfig.overload.stepUpAfterTicks = 4;
    rtf::Cluster cluster(app, rtf::ClusterConfig{serverConfig, {}, 7, nullptr});
    const ZoneId zone = cluster.createZone("z");
    const ServerId sid = cluster.addServer(zone);
    auto& sim = cluster.simulation();
    cluster.setTickPredictor([&sim](std::size_t, std::size_t, std::size_t) {
      return sim.now() < SimTime{SimDuration::seconds(2).micros} ? 50.0 : 0.1;
    });
    for (int i = 0; i < 8; ++i) cluster.connectClient(zone, bot());
    cluster.run(SimDuration::seconds(4));
    const rtf::Server& server = cluster.server(sid);
    return std::tuple(server.overloadStepDowns(), server.overloadStepUps(),
                      server.shedEvents(), server.readmitEvents(), server.overloadLevel(),
                      server.shedObservers());
  };
  const auto first = runOnce();
  EXPECT_EQ(first, runOnce());
  EXPECT_GE(std::get<2>(first), 1u);  // shed happened
  EXPECT_GE(std::get<3>(first), 1u);  // ...and was readmitted
  EXPECT_EQ(std::get<4>(first), 0u);  // back at full fidelity
  EXPECT_EQ(std::get<5>(first), 0u);
}

// ---------- admission control ----------

TEST(AdmissionTest, VetoUnderChaosRespectsCapAndRetries) {
  rms::OverloadSessionConfig config;
  config.replicas = 1;
  config.ladder = false;
  config.admission = true;
  config.maxUsersPerServer = 20;
  config.scenario = game::WorkloadScenario::constant(40, SimDuration::seconds(8));
  config.churn.maxChangePerPeriod = 5;
  net::FaultParams faults;
  faults.dropProbability = 0.05;
  faults.jitterMax = SimDuration::milliseconds(2);
  faults.reorderProbability = 0.1;
  config.linkFaults = faults;
  config.settle = SimDuration::seconds(2);
  config.seed = 99;

  const rms::OverloadSessionSummary summary = rms::runOverloadSession(config);
  // The gate held the line at the cap; the crowd above it was vetoed and
  // the churn layer kept retrying behind its backoff, never losing anyone.
  EXPECT_EQ(summary.users, 20u);
  EXPECT_GT(summary.admissionVetoes, 0u);
  EXPECT_GT(summary.joinsVetoed, 0u);
  EXPECT_GT(summary.joinRetries, 0u);
  EXPECT_TRUE(summary.conserved()) << summary.missingAvatars << " missing, "
                                   << summary.duplicateAvatars << " duplicated";
}

TEST(AdmissionTest, VetoedConnectReturnsInvalidIdAndChargesNothing) {
  game::FpsApplication app;
  rtf::Cluster cluster(app, rtf::ClusterConfig{{}, {}, 5, nullptr});
  const ZoneId zone = cluster.createZone("z");
  cluster.addServer(zone);
  cluster.setAdmissionGate([](const rtf::Server&, std::string& reason) {
    reason = "always refuse";
    return false;
  });
  const ClientId vetoed = cluster.connectClient(zone, bot());
  EXPECT_FALSE(vetoed.valid());
  EXPECT_EQ(cluster.clientCount(), 0u);
  EXPECT_EQ(cluster.admissionVetoes(), 1u);
  // Lifting the gate admits normally; the vetoed attempt consumed no ids.
  cluster.setAdmissionGate(nullptr);
  const ClientId admitted = cluster.connectClient(zone, bot());
  ASSERT_TRUE(admitted.valid());
  EXPECT_EQ(admitted.value, 1u);
}

// ---------- preemption + graceful drain ----------

TEST(PreemptionTest, GracefulDrainCompletesWithinWindow) {
  rms::OverloadSessionConfig config;
  config.replicas = 2;
  config.admission = false;
  config.scenario = game::WorkloadScenario::constant(20, SimDuration::seconds(8));
  config.preemptions = {{SimDuration::seconds(2), SimDuration::seconds(3)}};
  config.settle = SimDuration::seconds(3);
  config.seed = 1001;

  const rms::OverloadSessionSummary summary = rms::runOverloadSession(config);
  EXPECT_EQ(summary.preemptionsInjected, 1u);
  EXPECT_EQ(summary.gracefulDrains, 1u);
  // The victim emptied before the window closed: no crash fallback, every
  // user migrated off in an ordered handoff.
  EXPECT_EQ(summary.drainFallbacks, 0u);
  EXPECT_GT(summary.migrationsOrdered, 0u);
  EXPECT_EQ(summary.users, 20u);
  // The replacement replica restored the group size.
  EXPECT_EQ(summary.servers, 2u);
  EXPECT_TRUE(summary.conserved());
}

TEST(PreemptionTest, ExpiredNoticeFallsBackToCrashRecovery) {
  // The grace window is shorter than the management plane's polling period,
  // so the machine is reclaimed mid-handoff: the drain must degrade into
  // crash recovery without losing a single client.
  rms::OverloadSessionConfig config;
  config.replicas = 2;
  config.admission = false;
  config.scenario = game::WorkloadScenario::constant(20, SimDuration::seconds(8));
  config.preemptions = {{SimDuration::milliseconds(2050), SimDuration::milliseconds(200)}};
  config.settle = SimDuration::seconds(3);
  config.seed = 1002;

  const rms::OverloadSessionSummary summary = rms::runOverloadSession(config);
  EXPECT_EQ(summary.preemptionsInjected, 1u);
  EXPECT_EQ(summary.gracefulDrains, 1u);
  EXPECT_EQ(summary.drainFallbacks, 1u);
  EXPECT_EQ(summary.users, 20u);
  EXPECT_TRUE(summary.conserved()) << summary.missingAvatars << " missing, "
                                   << summary.duplicateAvatars << " duplicated";
}

TEST(PreemptionTest, StormOfThreeDrainsLosesNothing) {
  rms::OverloadSessionConfig config;
  config.replicas = 3;
  config.admission = false;
  config.scenario = game::WorkloadScenario::constant(30, SimDuration::seconds(14));
  config.preemptions = {{SimDuration::seconds(2), SimDuration::seconds(4)},
                        {SimDuration::seconds(5), SimDuration::seconds(4)},
                        {SimDuration::seconds(8), SimDuration::seconds(4)}};
  config.settle = SimDuration::seconds(3);
  config.seed = 1003;

  const rms::OverloadSessionSummary summary = rms::runOverloadSession(config);
  EXPECT_EQ(summary.preemptionsInjected, 3u);
  EXPECT_EQ(summary.gracefulDrains, 3u);
  EXPECT_EQ(summary.users, 30u);
  EXPECT_TRUE(summary.conserved()) << summary.missingAvatars << " missing, "
                                   << summary.duplicateAvatars << " duplicated";
}

// ---------- stale MigrationAck regression ----------

TEST(MigrationRecoveryTest, StaleAckAfterTargetCrashDoesNotWedgeClient) {
  // Regression: a MigrationAck in flight when the target crashes used to be
  // processed after recovery had already re-owned the avatar on the source,
  // erasing the live session and wedging the client forever.
  game::FpsApplication app;
  rtf::Cluster cluster(app, rtf::ClusterConfig{{}, {}, 1234, nullptr});
  const ZoneId zone = cluster.createZone("z");
  const ServerId a = cluster.addServer(zone);
  const ServerId b = cluster.addServer(zone);
  const ClientId client = cluster.connectClientTo(a, bot());
  ASSERT_TRUE(client.valid());
  cluster.run(SimDuration::seconds(1));

  ASSERT_TRUE(cluster.migrateClient(client, b));
  // Step until the target adopted the avatar — its ack to the source is now
  // in flight (or queued for the source's next tick).
  bool adopted = false;
  for (int i = 0; i < 2000 && !adopted; ++i) {
    cluster.run(SimDuration::milliseconds(1));
    adopted = cluster.server(b).hasClient(client);
  }
  ASSERT_TRUE(adopted);
  // The source must not have processed the ack yet, or the race below is
  // not exercised (deterministic for this seed).
  ASSERT_TRUE(cluster.server(a).hasClient(client));

  // Target dies with the ack unprocessed; recovery re-owns the avatar on
  // the source and aborts the hand-over.
  cluster.crashServer(b);
  cluster.recoverCrashedServer(b);

  // The stale ack arrives afterwards and must be ignored.
  const std::uint64_t updatesBefore = cluster.client(client).updatesReceived();
  cluster.run(SimDuration::seconds(2));
  EXPECT_TRUE(cluster.server(a).hasClient(client));
  EXPECT_EQ(cluster.clientServer(client), a);
  EXPECT_GT(cluster.client(client).updatesReceived(), updatesBefore);

  // Conservation: exactly one active avatar, owned by the source.
  std::size_t active = 0;
  for (const ServerId id : cluster.serverIds()) {
    const rtf::Server& server = cluster.server(id);
    if (server.crashed()) continue;
    server.world().forEach([&](rtf::ConstEntityRef e) {
      if (e.client == client && e.owner == id) ++active;
    });
  }
  EXPECT_EQ(active, 1u);
}

// ---------- reliable retransmit jitter ----------

ser::Frame taggedFrame(std::size_t tag) {
  ser::Frame frame;
  frame.type = ser::MessageType::kControl;
  frame.payload.assign(tag, 0x42);  // payload size doubles as the tag
  return frame;
}

struct JitterPeer {
  JitterPeer(sim::Simulation& sim, net::Network& net, rtf::ReliableConfig config) {
    node = net.addNode([this](NodeId from, const ser::Frame& frame) {
      transport->onFrame(from, frame);
    });
    transport = std::make_unique<rtf::ReliableTransport>(sim, net, node, config);
    transport->setDeliver([this](NodeId, const ser::Frame& inner) {
      deliveredTags.push_back(inner.payload.size());
    });
  }

  NodeId node;
  std::unique_ptr<rtf::ReliableTransport> transport;
  std::vector<std::size_t> deliveredTags;
};

struct JitterRunResult {
  std::vector<std::size_t> deliveredTags;
  std::uint64_t retransmissions{0};
  std::uint64_t duplicatesDropped{0};
  std::uint64_t abandoned{0};

  bool operator==(const JitterRunResult&) const = default;
};

JitterRunResult runJittered(double jitterFraction) {
  sim::Simulation sim;
  net::Network net(sim);
  net::LinkParams link;
  link.latency = SimDuration::milliseconds(1);
  link.bandwidthBytesPerSec = 1e12;
  net.setDefaultLinkParams(link);
  net::FaultInjector faults(0xA11CE);
  net::FaultParams params;
  params.dropProbability = 0.25;
  params.jitterMax = SimDuration::milliseconds(10);
  params.reorderProbability = 0.4;
  faults.setDefaultFaults(params);
  net.setFaultInjector(&faults);

  rtf::ReliableConfig config;
  config.jitterFraction = jitterFraction;
  JitterPeer sender(sim, net, config);
  JitterPeer receiver(sim, net, config);
  constexpr std::size_t kMessages = 150;
  for (std::size_t i = 1; i <= kMessages; ++i) {
    sender.transport->send(receiver.node, taggedFrame(i));
  }
  sim.runUntil(SimTime{SimDuration::seconds(30).micros});

  JitterRunResult result;
  result.deliveredTags = receiver.deliveredTags;
  result.retransmissions = sender.transport->stats().retransmissions;
  result.duplicatesDropped = receiver.transport->stats().duplicatesDropped;
  result.abandoned = sender.transport->stats().abandoned;
  return result;
}

TEST(ReliableJitterTest, JitteredRetransmitsStayExactlyOnceUnderDropAndReorder) {
  const JitterRunResult result = runJittered(0.4);
  // Exactly-once delivery survives loss, reordering and jittered timers:
  // every tag arrives once, duplicates are dropped by the receive-side
  // dedup, nothing is abandoned.
  ASSERT_EQ(result.deliveredTags.size(), 150u);
  std::vector<std::size_t> sorted = result.deliveredTags;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i + 1);
  EXPECT_GT(result.retransmissions, 0u);
  EXPECT_EQ(result.abandoned, 0u);

  // Seeded jitter is deterministic: the same run twice is byte-identical,
  // including the delivery order under reordering faults.
  EXPECT_EQ(result, runJittered(0.4));
}

TEST(ReliableJitterTest, JitterPerturbsTimersButNotOutcome) {
  const JitterRunResult plain = runJittered(0.0);
  const JitterRunResult jittered = runJittered(0.4);
  // Both deliver the full set exactly once...
  std::vector<std::size_t> a = plain.deliveredTags;
  std::vector<std::size_t> b = jittered.deliveredTags;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
  // ...but jitter changes when retransmit timers fire, so the fault
  // injector's RNG stream diverges and the runs are genuinely different.
  EXPECT_NE(plain, jittered);
}

}  // namespace
}  // namespace roia
