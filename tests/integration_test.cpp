// End-to-end integration tests: the full paper pipeline.
//
//  * calibrate the model from instrumented sessions and check that the
//    fitted functions have the shapes section V-A predicts,
//  * validate the model: predicted tick duration T(l, n, m) vs. directly
//    measured steady-state tick duration,
//  * run RTF-RMS managed sessions and check the paper's headline claims:
//    no QoS violations after warm-up with the model-driven policy, users
//    conserved, replicas added under load and removed after it.
#include <gtest/gtest.h>

#include "game/calibrate.hpp"
#include "game/measurement.hpp"
#include "model/report.hpp"
#include "model/thresholds.hpp"
#include "rms/session.hpp"

namespace roia {
namespace {

/// Shared, lazily-built calibration (measurement campaigns are the slow
/// part; one run serves all tests in this file).
const game::CalibrationResult& calibration() {
  static const game::CalibrationResult result = [] {
    game::CalibrationConfig config;
    config.replicationPopulations = {50, 100, 150, 200, 250, 300};
    config.migrationPopulations = {60, 140, 220};
    return game::calibrateModel(config);
  }();
  return result;
}

TEST(CalibrationTest, FittedShapesMatchPaperSectionVA) {
  const model::ModelParameters& params = calibration().parameters;

  // t_ua quadratic with positive curvature (attack scan over all users).
  const auto& ua = params.at(model::ParamKind::kUa);
  ASSERT_EQ(ua.coeffs.size(), 3u);
  EXPECT_GT(ua.coeffs[2], 0.0);
  EXPECT_GT(ua.gof.r2, 0.7);

  // t_aoi quadratic, dominating the per-user cost at large n.
  const auto& aoi = params.at(model::ParamKind::kAoi);
  EXPECT_GT(aoi.coeffs[2], 0.0);
  EXPECT_GT(aoi.gof.r2, 0.95);

  // Linear parameters grow with n.
  for (const auto kind : {model::ParamKind::kUaDser, model::ParamKind::kSu,
                          model::ParamKind::kFa, model::ParamKind::kFaDser}) {
    const auto& fn = params.at(kind);
    ASSERT_EQ(fn.coeffs.size(), 2u) << model::paramName(kind);
    EXPECT_GT(fn.coeffs[1], 0.0) << model::paramName(kind);
  }

  // Forwarded-input costs are small compared to the active-user tasks
  // (paper: "very short CPU time ... compared to the other parameters").
  EXPECT_LT(params.eval(model::ParamKind::kFa, 300) +
                params.eval(model::ParamKind::kFaDser, 300),
            0.2 * (params.eval(model::ParamKind::kUa, 300) +
                   params.eval(model::ParamKind::kAoi, 300)));

  // Initiating migrations is costlier than receiving them (paper Fig. 6).
  EXPECT_GT(params.eval(model::ParamKind::kMigIni, 150),
            params.eval(model::ParamKind::kMigRcv, 150));
}

TEST(CalibrationTest, ThresholdsMatchPaperAnchors) {
  const model::TickModel tickModel(calibration().parameters);
  const model::ThresholdReport report = model::buildReport(tickModel, 40.0, 0.15);
  // Paper: single server ~235 users, trigger 188, l_max = 8.
  EXPECT_NEAR(static_cast<double>(report.nMaxPerReplica[0]), 235.0, 25.0);
  EXPECT_NEAR(static_cast<double>(report.lMax), 8.0, 1.0);
  // c = 0.05 admits far more replicas; c = 1 only one (paper discussion).
  EXPECT_GE(model::lMax(tickModel, 0, 40000.0, 0.05).lMax, 20u);
  EXPECT_EQ(model::lMax(tickModel, 0, 40000.0, 1.0).lMax, 1u);
}

TEST(ModelValidationTest, PredictionMatchesMeasurementAcrossReplicaCounts) {
  const model::TickModel tickModel(calibration().parameters);
  game::MeasurementConfig config;
  config.warmup = SimDuration::seconds(2);
  config.measure = SimDuration::seconds(2);

  struct Case {
    std::size_t users;
    std::size_t replicas;
  };
  for (const Case c : {Case{120, 1}, Case{120, 2}, Case{200, 2}, Case{240, 3}}) {
    const game::SteadyStateResult measured =
        game::measureSteadyState(config, c.users, c.replicas);
    const double predictedMs = tickModel.tickMillis(static_cast<double>(c.replicas),
                                                    static_cast<double>(c.users), 0);
    EXPECT_NEAR(measured.tickAvgMs, predictedMs, 0.30 * predictedMs + 0.5)
        << "n=" << c.users << " l=" << c.replicas;
  }
}

TEST(ModelValidationTest, NMaxIsARealCapacityBoundary) {
  const model::TickModel tickModel(calibration().parameters);
  const std::size_t nMax1 = model::nMax(tickModel, 1, 0, 40000.0);
  game::MeasurementConfig config;
  config.warmup = SimDuration::seconds(2);
  config.measure = SimDuration::seconds(2);

  // Below n_max the real server holds the threshold...
  const auto below = game::measureSteadyState(config, nMax1 * 8 / 10, 1);
  EXPECT_LT(below.tickAvgMs, 40.0);
  // ...well above it, the real server violates it.
  const auto above = game::measureSteadyState(config, nMax1 * 13 / 10, 1);
  EXPECT_GT(above.tickAvgMs, 40.0);
}

TEST(ManagedSessionTest, ModelDrivenSessionHoldsQoS) {
  // The paper's Fig. 8 claim: with model-driven thresholds the tick duration
  // never exceeds 40 ms while the population ramps 0 -> 300 -> 0.
  rms::ManagedSessionConfig config;
  config.scenario = game::WorkloadScenario::paperSession(
      300, SimDuration::seconds(40), SimDuration::seconds(15), SimDuration::seconds(40));
  config.rms.controlPeriod = SimDuration::seconds(1);
  config.rms.serverStartupDelay = SimDuration::seconds(2);
  const rms::SessionSummary summary =
      rms::runManagedSession(config, model::TickModel(calibration().parameters));

  EXPECT_EQ(summary.policy, "model-driven");
  EXPECT_GE(summary.peakUsers, 280u);
  EXPECT_GE(summary.peakServers, 2u);        // replication enactment happened
  EXPECT_GT(summary.replicasAdded, 0u);
  EXPECT_GT(summary.replicasRemoved, 0u);    // and resources were returned
  EXPECT_LE(summary.maxTickMs, 40.0);        // headline: no QoS violation
  EXPECT_EQ(summary.violationPeriods, 0u);
  EXPECT_GT(summary.migrations, 0u);
  EXPECT_GT(summary.serverSeconds, 0.0);
}

TEST(ManagedSessionTest, ReplicationEnactmentReducesCpuLoad) {
  rms::ManagedSessionConfig config;
  config.scenario = game::WorkloadScenario::paperSession(
      280, SimDuration::seconds(40), SimDuration::seconds(10), SimDuration::seconds(30));
  const rms::SessionSummary summary =
      rms::runManagedSession(config, model::TickModel(calibration().parameters));

  // Find the first control period where the server count rises; average CPU
  // load shortly after must drop below the load just before (Fig. 8).
  const auto& timeline = summary.timeline;
  for (std::size_t i = 1; i + 3 < timeline.size(); ++i) {
    if (timeline[i].servers > timeline[i - 1].servers && timeline[i - 1].servers == 1) {
      const double before = timeline[i - 1].avgCpuLoad;
      const double after = timeline[i + 3].avgCpuLoad;
      EXPECT_LT(after, before);
      return;
    }
  }
  FAIL() << "no replication enactment found in timeline";
}

TEST(ManagedSessionTest, SessionsAreDeterministic) {
  rms::ManagedSessionConfig config;
  config.scenario = game::WorkloadScenario::paperSession(
      120, SimDuration::seconds(15), SimDuration::seconds(5), SimDuration::seconds(15));
  const model::TickModel tickModel(calibration().parameters);
  const rms::SessionSummary a = rms::runManagedSession(config, tickModel);
  const rms::SessionSummary b = rms::runManagedSession(config, tickModel);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.maxTickMs, b.maxTickMs);
  EXPECT_EQ(a.serverSeconds, b.serverSeconds);
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].users, b.timeline[i].users);
    EXPECT_EQ(a.timeline[i].servers, b.timeline[i].servers);
  }
}

TEST(ManagedSessionTest, StaticBaselineViolatesQoSUnderRamp) {
  // The static baseline only reacts after the threshold is crossed, so the
  // ramp pushes at least one period above 40 ms (the contrast motivating
  // the paper's predictive model).
  rms::ManagedSessionConfig config;
  config.strategyFactory = rms::makeStaticIntervalFactory();
  config.scenario = game::WorkloadScenario::paperSession(
      300, SimDuration::seconds(40), SimDuration::seconds(15), SimDuration::seconds(30));
  config.rms.serverStartupDelay = SimDuration::seconds(2);
  const rms::SessionSummary summary =
      rms::runManagedSession(config, model::TickModel(calibration().parameters));
  EXPECT_GT(summary.maxTickMs, 40.0);
  EXPECT_GT(summary.violationPeriods, 0u);
}

TEST(ManagedSessionTest, PoliciesProduceDifferentMigrationVolumes) {
  rms::ManagedSessionConfig config;
  config.scenario = game::WorkloadScenario::paperSession(
      200, SimDuration::seconds(25), SimDuration::seconds(10), SimDuration::seconds(25));
  const model::TickModel tickModel(calibration().parameters);

  config.strategyFactory = rms::makeModelDrivenFactory();
  const auto throttled = rms::runManagedSession(config, tickModel);
  config.strategyFactory = rms::makeUnthrottledFactory();
  const auto unthrottled = rms::runManagedSession(config, tickModel);

  // The throttled policy trickles small bursts; the unthrottled one may move
  // a whole imbalance at once. The distinguishing invariant is the largest
  // per-period burst, which Eq. (5) caps for the model-driven policy.
  auto maxBurst = [](const rms::SessionSummary& s) {
    std::size_t burst = 0;
    for (const auto& p : s.timeline) burst = std::max(burst, p.migrationsOrdered);
    return burst;
  };
  EXPECT_GE(maxBurst(unthrottled), maxBurst(throttled));
  EXPECT_GT(throttled.migrations, 0u);
  EXPECT_GT(unthrottled.migrations, 0u);
}

}  // namespace
}  // namespace roia
