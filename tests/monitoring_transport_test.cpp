// Tests for the network-transported monitoring path: the snapshot codec,
// the collector endpoint, per-server publication cadence, and RTF-RMS
// driving its decisions from published (slightly stale) data.
#include <gtest/gtest.h>

#include <memory>

#include "game/bots.hpp"
#include "game/fps_app.hpp"
#include "rms/manager.hpp"
#include "rms/model_strategy.hpp"
#include "rtf/cluster.hpp"
#include "rtf/monitoring.hpp"

namespace roia::rtf {
namespace {

TEST(MonitoringCodecTest, RoundTrip) {
  MonitoringSnapshot snapshot;
  snapshot.server = ServerId{7};
  snapshot.zone = ZoneId{3};
  snapshot.takenAt = SimTime{123456};
  snapshot.activeUsers = 42;
  snapshot.totalAvatars = 84;
  snapshot.npcs = 5;
  snapshot.tickAvgMs = 12.5;
  snapshot.tickP95Ms = 17.75;
  snapshot.tickMaxMs = 19.25;
  snapshot.cpuLoad = 0.31;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    snapshot.phaseAvgMicros[i] = static_cast<double>(i) * 10.5;
  }
  snapshot.ticksObserved = 1000;
  snapshot.migrationsInitiated = 3;
  snapshot.migrationsReceived = 9;

  const MonitoringSnapshot decoded = decodeMonitoring(encodeMonitoring(snapshot));
  EXPECT_EQ(decoded.server, snapshot.server);
  EXPECT_EQ(decoded.zone, snapshot.zone);
  EXPECT_EQ(decoded.takenAt, snapshot.takenAt);
  EXPECT_EQ(decoded.activeUsers, 42u);
  EXPECT_DOUBLE_EQ(decoded.tickAvgMs, 12.5);
  EXPECT_DOUBLE_EQ(decoded.tickP95Ms, 17.75);
  EXPECT_DOUBLE_EQ(decoded.tickMaxMs, 19.25);
  EXPECT_DOUBLE_EQ(decoded.cpuLoad, 0.31);
  EXPECT_NEAR(decoded.phaseAvgMicros[3], 31.5, 1e-4);
  EXPECT_EQ(decoded.migrationsReceived, 9u);
}

TEST(MonitoringCodecTest, WrongTypeRejected) {
  ser::Frame frame;
  frame.type = ser::MessageType::kControl;
  EXPECT_THROW((void)decodeMonitoring(frame), ser::DecodeError);
}

struct Fixture {
  game::FpsApplication app;
  Cluster cluster{app, ClusterConfig{}};
  ZoneId zone = cluster.createZone("arena");
};

TEST(MonitoringCollectorTest, ReceivesPublishedSnapshots) {
  Fixture f;
  MonitoringCollector& collector = f.cluster.attachMonitoringCollector();
  const ServerId s = f.cluster.addServer(f.zone);
  for (int i = 0; i < 10; ++i) {
    f.cluster.connectClient(f.zone, std::make_unique<game::BotProvider>());
  }
  f.cluster.run(SimDuration::seconds(3));

  // Default cadence 500 ms -> roughly 6 snapshots in 3 s.
  EXPECT_GE(collector.snapshotsReceived(), 5u);
  EXPECT_LE(collector.snapshotsReceived(), 9u);
  const auto latest = collector.latest(s);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->activeUsers, 10u);
  EXPECT_EQ(latest->zone, f.zone);
  // p95 comes from the same window as avg/max and must sit within them.
  EXPECT_GT(latest->tickP95Ms, 0.0);
  EXPECT_LE(latest->tickP95Ms, latest->tickMaxMs + 1e-9);
  const auto staleness = collector.staleness(s);
  ASSERT_TRUE(staleness.has_value());
  EXPECT_LE(staleness->micros, SimDuration::milliseconds(600).micros);
}

TEST(MonitoringCollectorTest, AttachIsRetroactiveAndIdempotent) {
  Fixture f;
  const ServerId s = f.cluster.addServer(f.zone);  // before attach
  MonitoringCollector& first = f.cluster.attachMonitoringCollector();
  MonitoringCollector& second = f.cluster.attachMonitoringCollector();
  EXPECT_EQ(&first, &second);
  f.cluster.run(SimDuration::seconds(1));
  EXPECT_TRUE(first.latest(s).has_value());
}

TEST(MonitoringCollectorTest, ZoneSnapshotsAndForget) {
  Fixture f;
  MonitoringCollector& collector = f.cluster.attachMonitoringCollector();
  const ZoneId other = f.cluster.createZone("other");
  f.cluster.addServer(f.zone);
  const ServerId s2 = f.cluster.addServer(f.zone);
  f.cluster.addServer(other);
  f.cluster.run(SimDuration::seconds(1));

  EXPECT_EQ(collector.zoneSnapshots(f.zone).size(), 2u);
  EXPECT_EQ(collector.zoneSnapshots(other).size(), 1u);

  f.cluster.removeServer(s2);  // cluster tells the collector to forget
  EXPECT_EQ(collector.zoneSnapshots(f.zone).size(), 1u);
  EXPECT_FALSE(collector.latest(s2).has_value());
}

TEST(MonitoringCollectorTest, UnknownServerQueriesAreEmpty) {
  Fixture f;
  MonitoringCollector& collector = f.cluster.attachMonitoringCollector();
  EXPECT_FALSE(collector.latest(ServerId{99}).has_value());
  EXPECT_FALSE(collector.staleness(ServerId{99}).has_value());
  EXPECT_TRUE(collector.zoneSnapshots(f.zone).empty());
}

TEST(MonitoringTransportRmsTest, ManagerBalancesFromPublishedData) {
  Fixture f;
  f.cluster.attachMonitoringCollector();
  const ServerId a = f.cluster.addServer(f.zone);
  const ServerId b = f.cluster.addServer(f.zone);
  for (int i = 0; i < 160; ++i) {
    f.cluster.connectClientTo(a, std::make_unique<game::BotProvider>());
  }

  model::ModelParameters params;
  params.set(model::ParamKind::kUaDser, model::ParamFunction::linear(1.0, 0.0015));
  params.set(model::ParamKind::kUa, model::ParamFunction::quadratic(1.2, 0.009, 1.2e-4));
  params.set(model::ParamKind::kAoi, model::ParamFunction::quadratic(0.1, 0.45, 0.8e-4));
  params.set(model::ParamKind::kSu, model::ParamFunction::linear(1.5, 0.2));
  params.set(model::ParamKind::kFaDser, model::ParamFunction::linear(0.55, 0.0007));
  params.set(model::ParamKind::kFa, model::ParamFunction::linear(0.9, 0.0023));
  params.set(model::ParamKind::kMigIni, model::ParamFunction::linear(150.0, 5.0));
  params.set(model::ParamKind::kMigRcv, model::ParamFunction::linear(80.0, 2.2));

  rms::RmsConfig config;
  config.controlPeriod = SimDuration::milliseconds(500);
  config.useNetworkMonitoring = true;
  rms::RmsManager manager(f.cluster, f.zone,
                          std::make_unique<rms::ModelDrivenStrategy>(
                              model::TickModel(params), rms::ModelStrategyConfig{}),
                          rms::ResourcePool{}, config);
  manager.start();
  f.cluster.run(SimDuration::seconds(25));
  manager.stop();

  // Balanced via the published-monitoring path.
  const std::size_t onA = f.cluster.server(a).connectedUsers();
  const std::size_t onB = f.cluster.server(b).connectedUsers();
  EXPECT_EQ(onA + onB, 160u);
  EXPECT_NEAR(static_cast<double>(onA), 80.0, 12.0);
  EXPECT_GT(manager.migrationsOrderedTotal(), 20u);
}

}  // namespace
}  // namespace roia::rtf
