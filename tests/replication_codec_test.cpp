// Snapshot codec tests: full-mode wire compatibility with the legacy
// layout, delta entry round-trips, quantization error bounds, baseline
// sender/receiver resync over lossy links, and cluster-level properties
// (full-vs-delta run equivalence on a clean network, shadow consistency
// under chaos with the delta codec).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <tuple>
#include <vector>

#include "game/bots.hpp"
#include "game/fps_app.hpp"
#include "net/fault.hpp"
#include "rtf/cluster.hpp"
#include "rtf/snapshot_codec.hpp"
#include "serialize/byte_buffer.hpp"

namespace roia::rtf {
namespace {

EntitySnapshot sampleSnapshot() {
  EntitySnapshot s;
  s.id = EntityId{42};
  s.kind = EntityKind::kNpc;
  s.owner = ServerId{3};
  s.client = ClientId{7};
  s.x = 123.625f;
  s.y = -45.0f;
  s.vx = 1.5f;
  s.vy = -2.25f;
  s.health = 87.5f;
  s.version = 19;
  s.appData = {0xde, 0xad, 0xbe};
  return s;
}

void expectSnapshotEq(const EntitySnapshot& a, const EntitySnapshot& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.owner, b.owner);
  EXPECT_EQ(a.client, b.client);
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.y, b.y);
  EXPECT_EQ(a.vx, b.vx);
  EXPECT_EQ(a.vy, b.vy);
  EXPECT_EQ(a.health, b.health);
  EXPECT_EQ(a.version, b.version);
  EXPECT_EQ(a.appData, b.appData);
}

TEST(SnapshotCodecTest, FullEncodingMatchesLegacyLayout) {
  const EntitySnapshot s = sampleSnapshot();
  ser::ByteWriter viaSchema;
  SnapshotCodec::writeSnapshot(viaSchema, s);

  // The legacy free-function layout, written by hand: id, kind, owner,
  // client, x, y, vx, vy, health, version, appData.
  ser::ByteWriter legacy;
  legacy.writeVarU64(s.id.value);
  legacy.writeU8(static_cast<std::uint8_t>(s.kind));
  legacy.writeVarU64(s.owner.value);
  legacy.writeVarU64(s.client.value);
  legacy.writeF32(s.x);
  legacy.writeF32(s.y);
  legacy.writeF32(s.vx);
  legacy.writeF32(s.vy);
  legacy.writeF32(s.health);
  legacy.writeVarU64(s.version);
  legacy.writeBytes(s.appData);

  EXPECT_EQ(std::move(viaSchema).take(), std::move(legacy).take());
}

TEST(SnapshotCodecTest, FullRoundTripPreservesEveryField) {
  const EntitySnapshot s = sampleSnapshot();
  ser::ByteWriter writer;
  SnapshotCodec::writeSnapshot(writer, s);
  const std::vector<std::uint8_t> bytes = std::move(writer).take();
  ser::ByteReader reader(bytes);
  expectSnapshotEq(SnapshotCodec::readSnapshot(reader), s);
  EXPECT_TRUE(reader.atEnd());
}

TEST(SnapshotCodecTest, SchemaCoversEveryFieldExactlyOnce) {
  const auto rows = snapshotSchema();
  ASSERT_EQ(rows.size(), 11u);
  FieldMask seen = 0;
  bool sawId = false;
  for (const SnapshotSchemaRow& row : rows) {
    if (row.field == SnapshotField::kId) {
      EXPECT_FALSE(sawId);
      sawId = true;
      continue;
    }
    const FieldMask bit = fieldBit(row.field);
    EXPECT_EQ(seen & bit, 0) << "duplicate schema row for " << row.name;
    seen |= bit;
  }
  EXPECT_TRUE(sawId);
  EXPECT_EQ(seen, kAllFields);
}

TEST(SnapshotCodecTest, DeltaEntryRoundTripAgainstBaseline) {
  const SnapshotCodec codec{ReplicationProfile{}};
  // Sender-side state is quantized before diffing, mirroring encodeView.
  const EntitySnapshot base = codec.quantized(sampleSnapshot());
  EntitySnapshot now = base;
  now.x += 5.0f;
  now.health = 31.0f;
  now.version += 3;
  now = codec.quantized(now);

  const FieldMask mask = codec.changedFields(base, now, kAllFields);
  EXPECT_EQ(mask, fieldBit(SnapshotField::kX) | fieldBit(SnapshotField::kHealth) |
                      fieldBit(SnapshotField::kVersion));

  ser::ByteWriter writer;
  codec.writeEntry(writer, &base, now, mask);
  const std::vector<std::uint8_t> bytes = std::move(writer).take();

  SnapshotView baseline;
  baseline.emplace(base.id, base);
  ser::ByteReader reader(bytes);
  expectSnapshotEq(codec.readEntry(reader, base.id, &baseline), now);
  EXPECT_TRUE(reader.atEnd());
}

TEST(SnapshotCodecTest, DeltaEntryFromImplicitDefaultBaseline) {
  const SnapshotCodec codec{ReplicationProfile{}};
  const EntitySnapshot now = codec.quantized(sampleSnapshot());
  const EntitySnapshot base{};  // keyframe / spawn: implicit default
  const FieldMask mask = codec.changedFields(base, now, kAllFields);

  ser::ByteWriter writer;
  codec.writeEntry(writer, nullptr, now, mask);
  const std::vector<std::uint8_t> bytes = std::move(writer).take();

  ser::ByteReader reader(bytes);
  EntitySnapshot decoded = codec.readEntry(reader, now.id, nullptr);
  expectSnapshotEq(decoded, now);
}

TEST(SnapshotCodecTest, QuantizationErrorIsBoundedByHalfStep) {
  // Non-power-of-two scales included on purpose: the bound must come from
  // symmetric rounding, not from binary-exact lattice coincidences.
  for (const double scale : {16.0, 8.0, 10.0, 3.0, 7.5}) {
    ReplicationProfile profile;
    profile.positionScale = scale;
    profile.velocityScale = scale;
    const SnapshotCodec codec{profile};
    const double bound = 0.5 / scale + 1e-6;
    for (float v = -100.0f; v <= 100.0f; v += 0.37f) {
      EntitySnapshot s;
      s.x = v;
      s.y = -v;
      s.vx = v * 0.25f;
      s.vy = -v * 0.25f;
      const EntitySnapshot q = codec.quantized(s);
      EXPECT_LE(std::abs(static_cast<double>(q.x) - static_cast<double>(s.x)), bound)
          << "scale " << scale << " value " << v;
      EXPECT_LE(std::abs(static_cast<double>(q.y) - static_cast<double>(s.y)), bound);
      EXPECT_LE(std::abs(static_cast<double>(q.vx) - static_cast<double>(s.vx)), bound);
      EXPECT_LE(std::abs(static_cast<double>(q.vy) - static_cast<double>(s.vy)), bound);
    }
  }
}

TEST(SnapshotCodecTest, NonPositiveScaleKeepsValuesExact) {
  ReplicationProfile profile;
  profile.positionScale = 0.0;
  profile.velocityScale = 0.0;
  const SnapshotCodec codec{profile};
  const EntitySnapshot s = sampleSnapshot();
  expectSnapshotEq(codec.quantized(s), s);
}

TEST(SnapshotCodecTest, ChangedFieldsComparesOnTheLattice) {
  const SnapshotCodec codec{ReplicationProfile{}};  // positionScale 16
  EntitySnapshot base = codec.quantized(sampleSnapshot());
  EntitySnapshot below = base;
  below.x += 0.01f;  // far less than half a 1/16 lattice step
  EXPECT_EQ(codec.changedFields(base, below, kAllFields), 0);
  EntitySnapshot above = base;
  above.x += 0.2f;  // more than one lattice step
  EXPECT_EQ(codec.changedFields(base, above, kAllFields), fieldBit(SnapshotField::kX));
}

// --- baseline sender/receiver --------------------------------------------

struct Link {
  SnapshotCodec codec;
  BaselineSender sender;
  BaselineReceiver receiver;

  explicit Link(ReplicationProfile profile = {}, FieldMask fields = kAllFields)
      : codec(profile), sender(codec, fields), receiver(codec) {}

  /// Encodes `view` at `tick`; delivers and acks when `deliver` is set.
  /// Returns the decoded view when one was applied.
  std::optional<BaselineReceiver::DecodedView> step(std::uint64_t tick, const SnapshotView& view,
                                                    std::vector<EntityId> removed = {},
                                                    bool deliver = true) {
    ser::ByteWriter out;
    sender.encodeView(tick, view, removed, out);
    const std::vector<std::uint8_t> payload = std::move(out).take();
    if (!deliver) return std::nullopt;
    auto decoded = receiver.decodeView(payload);
    if (decoded.has_value()) sender.onAck(decoded->serverTick);
    return decoded;
  }
};

SnapshotView quantizedView(const SnapshotCodec& codec, const SnapshotView& view) {
  SnapshotView out;
  for (const auto& [id, snap] : view) out.emplace(id, codec.quantized(snap));
  return out;
}

void expectViewEq(const SnapshotView& got, const SnapshotView& want) {
  ASSERT_EQ(got.size(), want.size());
  auto it = want.begin();
  for (const auto& [id, snap] : got) {
    ASSERT_EQ(id, it->first);
    expectSnapshotEq(snap, it->second);
    ++it;
  }
}

SnapshotView makeView(std::initializer_list<std::uint64_t> ids) {
  SnapshotView view;
  for (const std::uint64_t id : ids) {
    EntitySnapshot s = sampleSnapshot();
    s.id = EntityId{id};
    s.x = static_cast<float>(id) * 3.1f;
    s.y = static_cast<float>(id) * -1.7f;
    view.emplace(s.id, s);
  }
  return view;
}

TEST(BaselineLinkTest, KeyframeThenDeltasReconstructSpawnsMovesAndDespawns) {
  Link link;
  SnapshotView view = makeView({1, 2, 5});

  auto first = link.step(1, view);
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->keyframe);
  expectViewEq(*first->view, quantizedView(link.codec, view));

  // Move an entity and spawn a new one: the next frame is a delta.
  view.at(EntityId{2}).x += 10.0f;
  view.emplace(EntityId{9}, [] {
    EntitySnapshot s = sampleSnapshot();
    s.id = EntityId{9};
    return s;
  }());
  auto second = link.step(2, view);
  ASSERT_TRUE(second.has_value());
  EXPECT_FALSE(second->keyframe);
  expectViewEq(*second->view, quantizedView(link.codec, view));

  // Despawn: the entity leaves the view and is announced as removed.
  view.erase(EntityId{5});
  auto third = link.step(3, view, {EntityId{5}});
  ASSERT_TRUE(third.has_value());
  EXPECT_FALSE(third->keyframe);
  ASSERT_EQ(third->removed.size(), 1u);
  EXPECT_EQ(third->removed.front(), EntityId{5});
  expectViewEq(*third->view, quantizedView(link.codec, view));
}

TEST(BaselineLinkTest, DeltaFramesAreSmallerThanKeyframes) {
  Link link;
  SnapshotView view = makeView({1, 2, 3, 4, 5, 6, 7, 8});
  ser::ByteWriter key;
  link.sender.encodeView(1, view, {}, key);
  ASSERT_TRUE(link.receiver.decodeView(key.bytes()).has_value());
  link.sender.onAck(1);

  view.at(EntityId{3}).x += 1.0f;  // one entity moved one world unit
  ser::ByteWriter delta;
  link.sender.encodeView(2, view, {}, delta);
  EXPECT_LT(delta.size() * 4, key.size());
}

TEST(BaselineLinkTest, KeyframeResyncAfterAckLoss) {
  ReplicationProfile profile;
  profile.baselineAckWindow = 4;
  profile.keyframeInterval = 1000;  // periodic keyframes out of the way
  Link link(profile);
  SnapshotView view = makeView({1, 2});

  ASSERT_TRUE(link.step(1, view).has_value());  // delivered + acked

  // The link goes dark: frames (and therefore acks) are lost. The sender
  // keeps diffing against tick 1 while the window allows it...
  for (std::uint64_t tick = 2; tick <= 5; ++tick) {
    view.at(EntityId{1}).x += 1.0f;
    link.step(tick, view, {}, /*deliver=*/false);
  }
  // ...then falls back to keyframes once the ack is older than the window.
  view.at(EntityId{1}).x += 1.0f;
  ser::ByteWriter out;
  const auto result = link.sender.encodeView(6, view, {}, out);
  EXPECT_TRUE(result.keyframe);

  // The receiver lost every frame since tick 1, yet the keyframe applies
  // (no baseline needed) and fully resyncs the view.
  auto decoded = link.receiver.decodeView(out.bytes());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->keyframe);
  expectViewEq(*decoded->view, quantizedView(link.codec, view));
}

TEST(BaselineLinkTest, StaleFramesAndUnknownBaselinesAreSkippedNotApplied) {
  Link link;
  SnapshotView view = makeView({1});

  ser::ByteWriter first;
  link.sender.encodeView(5, view, {}, first);
  ASSERT_TRUE(link.receiver.decodeView(first.bytes()).has_value());
  link.sender.onAck(5);

  // A reordered copy of an old tick must not regress the receiver.
  EXPECT_FALSE(link.receiver.decodeView(first.bytes()).has_value());

  // A delta against a baseline the receiver never applied is skipped: the
  // sender acked tick 6 (say, the ack raced a drop of the frame itself).
  view.at(EntityId{1}).x += 1.0f;
  ser::ByteWriter lost;
  link.sender.encodeView(6, view, {}, lost);
  link.sender.onAck(6);
  view.at(EntityId{1}).x += 1.0f;
  ser::ByteWriter delta;
  link.sender.encodeView(7, view, {}, delta);
  EXPECT_FALSE(link.receiver.decodeView(delta.bytes()).has_value());
}

TEST(BaselineLinkTest, AcksForNeverSentTicksAreIgnored) {
  Link link;
  link.sender.onAck(999);  // stale ack from a previous link incarnation
  EXPECT_FALSE(link.sender.hasAcked());
  SnapshotView view = makeView({1});
  ser::ByteWriter out;
  EXPECT_TRUE(link.sender.encodeView(1, view, {}, out).keyframe);
}

TEST(BaselineLinkTest, MalformedPayloadsThrowInsteadOfSmearing) {
  Link link;
  // An implausible entry count must not drive a huge allocation.
  ser::ByteWriter bogus;
  bogus.writeU8(1);          // keyframe
  bogus.writeVarU64(1);      // tick
  bogus.writeVarU64(1u << 20);  // entry count far beyond the payload
  EXPECT_THROW(link.receiver.decodeView(bogus.bytes()), ser::DecodeError);

  // Non-ascending entry ids (a zero gap after the first entry) are wire
  // corruption by construction.
  ser::ByteWriter dup;
  dup.writeU8(1);
  dup.writeVarU64(2);
  dup.writeVarU64(2);   // two entries
  dup.writeVarU64(7);   // id 7
  dup.writeVarU64(0);   // empty mask
  dup.writeVarU64(0);   // zero gap -> id 7 again
  EXPECT_THROW(link.receiver.decodeView(dup.bytes()), ser::DecodeError);
}

// --- cluster-level properties --------------------------------------------

struct EntityState {
  std::uint64_t id{0};
  double x{0}, y{0}, vx{0}, vy{0}, health{0};
  std::uint64_t version{0};
  bool operator==(const EntityState&) const = default;
};

std::vector<std::vector<EntityState>> runScenario(ReplicationCodec codec, std::uint64_t seed,
                                                  std::size_t bots) {
  game::FpsApplication app;
  ClusterConfig config;
  config.serverTemplate.replication.codec = codec;
  config.seed = seed;
  Cluster cluster(app, config);
  const ZoneId zone = cluster.createZone("arena");
  cluster.addServer(zone);
  cluster.addServer(zone);
  for (std::size_t i = 0; i < bots; ++i) {
    cluster.connectClient(zone, std::make_unique<game::BotProvider>());
  }
  cluster.run(SimDuration::seconds(3));

  std::vector<std::vector<EntityState>> worlds;
  for (const ServerId id : cluster.serverIds()) {
    std::vector<EntityState> entities;
    cluster.server(id).world().forEach([&](const auto& e) {
      entities.push_back(EntityState{e.id.value, e.position.x, e.position.y, e.velocity.x,
                                     e.velocity.y, e.health, e.version});
    });
    worlds.push_back(std::move(entities));
  }
  return worlds;
}

// The delta codec changes the wire, not the game: bots decide from the id
// set they see, the view carries the same information as the full update,
// and quantization only affects what clients *display*. A full-mode run and
// a delta-mode run from the same seed must therefore produce bit-identical
// authoritative worlds.
TEST(ReplicationPropertyTest, FullAndDeltaRunsAreEquivalentOnACleanNetwork) {
  for (const std::uint64_t seed : {11ull, 23ull}) {
    for (const std::size_t bots : {4ull, 10ull}) {
      const auto full = runScenario(ReplicationCodec::kFull, seed, bots);
      const auto delta = runScenario(ReplicationCodec::kDelta, seed, bots);
      ASSERT_EQ(full.size(), delta.size());
      for (std::size_t s = 0; s < full.size(); ++s) {
        EXPECT_EQ(full[s], delta[s]) << "seed " << seed << " bots " << bots << " server " << s;
      }
    }
  }
}

// Chaos on the replica links breaks baselines; the ack-window keyframe
// fallback must heal every shadow once the network recovers. Cross-mode
// equality does NOT hold under faults (drops perturb the two runs
// differently), so this checks delta-mode self-consistency instead.
TEST(ReplicationPropertyTest, DeltaShadowsReconvergeAfterChaosHeals) {
  game::FpsApplication app;
  ClusterConfig config;
  config.serverTemplate.replication.codec = ReplicationCodec::kDelta;
  config.seed = 0xC0DEC;
  Cluster cluster(app, config);
  const ZoneId zone = cluster.createZone("arena");
  const ServerId a = cluster.addServer(zone);
  const ServerId b = cluster.addServer(zone);
  for (int i = 0; i < 8; ++i) {
    cluster.connectClient(zone, std::make_unique<game::BotProvider>());
  }
  cluster.run(SimDuration::seconds(1));

  net::FaultInjector& faults = cluster.enableFaultInjection(0x5EED);
  net::FaultParams storm;
  storm.dropProbability = 0.3;
  storm.jitterMax = SimDuration::milliseconds(5);
  faults.setDefaultFaults(storm);
  cluster.run(SimDuration::seconds(2));
  faults.setDefaultFaults(net::FaultParams{});

  // Quiesce past the keyframe interval so every replica link has resynced.
  cluster.run(SimDuration::seconds(4));

  EXPECT_EQ(cluster.server(a).world().avatarCount(), 8u);
  EXPECT_EQ(cluster.server(b).world().avatarCount(), 8u);
  for (const ClientId c : cluster.clientIds()) {
    const EntityId avatar = cluster.client(c).avatar();
    const auto onA = cluster.server(a).world().find(avatar);
    const auto onB = cluster.server(b).world().find(avatar);
    ASSERT_TRUE(onA.has_value());
    ASSERT_TRUE(onB.has_value());
    // One of the two is the active copy; the other is a shadow at most a
    // replication round-trip behind. Same tolerance as the full-codec
    // shadow-tracking test.
    EXPECT_NEAR(onA->position.x, onB->position.x, 25.0);
    EXPECT_NEAR(onA->position.y, onB->position.y, 25.0);
    EXPECT_EQ(onA->client, onB->client);
  }
}

}  // namespace
}  // namespace roia::rtf
