// Tests for the RTF substrate: world storage, wire-message codecs, the
// monitoring window, and the cost meter / probes plumbing.
#include <gtest/gtest.h>

#include "rtf/messages.hpp"
#include "rtf/monitoring.hpp"
#include "rtf/probes.hpp"
#include "rtf/world.hpp"

namespace roia::rtf {
namespace {

EntityRecord makeAvatar(std::uint64_t id, std::uint64_t owner, Vec2 pos = {0, 0}) {
  EntityRecord e;
  e.id = EntityId{id};
  e.kind = EntityKind::kAvatar;
  e.zone = ZoneId{1};
  e.owner = ServerId{owner};
  e.client = ClientId{id + 1000};
  e.position = pos;
  e.version = 1;
  return e;
}

// ---------- world ----------

TEST(WorldTest, UpsertFindRemove) {
  World world(ZoneId{1});
  world.upsert(makeAvatar(1, 1));
  world.upsert(makeAvatar(2, 1));
  EXPECT_EQ(world.size(), 2u);
  EXPECT_TRUE(world.contains(EntityId{1}));
  ASSERT_TRUE(world.find(EntityId{2}).has_value());
  EXPECT_EQ(world.find(EntityId{2})->client, ClientId{1002});
  EXPECT_TRUE(world.remove(EntityId{1}));
  EXPECT_FALSE(world.remove(EntityId{1}));
  EXPECT_EQ(world.size(), 1u);
  EXPECT_FALSE(world.find(EntityId{1}).has_value());
}

TEST(WorldTest, UpsertReplacesExisting) {
  World world(ZoneId{1});
  world.upsert(makeAvatar(5, 1));
  EntityRecord updated = makeAvatar(5, 2, {9, 9});
  world.upsert(updated);
  EXPECT_EQ(world.size(), 1u);
  EXPECT_EQ(world.find(EntityId{5})->owner, ServerId{2});
  EXPECT_DOUBLE_EQ(world.find(EntityId{5})->position.x, 9.0);
}

TEST(WorldTest, IterationIsAscendingById) {
  World world(ZoneId{1});
  for (std::uint64_t id : {9, 3, 7, 1, 5}) world.upsert(makeAvatar(id, 1));
  std::vector<std::uint64_t> seen;
  world.forEach([&](ConstEntityRef e) { seen.push_back(e.id.value); });
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 3, 5, 7, 9}));
}

TEST(WorldTest, CountsByOwnerAndKind) {
  World world(ZoneId{1});
  world.upsert(makeAvatar(1, 1));
  world.upsert(makeAvatar(2, 1));
  world.upsert(makeAvatar(3, 2));
  EntityRecord npc = makeAvatar(4, 1);
  npc.kind = EntityKind::kNpc;
  npc.client = ClientId{};
  world.upsert(npc);

  EXPECT_EQ(world.activeCount(ServerId{1}), 3u);
  EXPECT_EQ(world.activeCount(ServerId{2}), 1u);
  EXPECT_EQ(world.avatarCount(), 3u);
  EXPECT_EQ(world.npcCount(), 1u);
  EXPECT_EQ(world.activeIds(ServerId{1}), (std::vector<EntityId>{EntityId{1}, EntityId{2},
                                                                 EntityId{4}}));
}

TEST(EntityRecordTest, ActiveShadowPredicate) {
  const EntityRecord e = makeAvatar(1, 3);
  EXPECT_TRUE(e.activeOn(ServerId{3}));
  EXPECT_FALSE(e.activeOn(ServerId{4}));
  EXPECT_TRUE(e.isAvatar());
  EXPECT_FALSE(e.isNpc());
}

TEST(EntitySnapshotTest, RoundTripThroughRecord) {
  EntityRecord e = makeAvatar(42, 7, {3.5, -2.25});
  e.velocity = {1.0, -1.0};
  e.health = 61.5;
  e.version = 99;
  const EntitySnapshot snap = EntitySnapshot::of(e);
  EntityRecord restored;
  restored.id = snap.id;
  snap.applyTo(restored);
  EXPECT_EQ(restored.owner, e.owner);
  EXPECT_EQ(restored.client, e.client);
  EXPECT_NEAR(restored.position.x, 3.5, 1e-6);
  EXPECT_NEAR(restored.health, 61.5, 1e-6);
  EXPECT_EQ(restored.version, 99u);
}

// ---------- messages ----------

TEST(MessagesTest, ClientInputRoundTrip) {
  ClientInputMsg msg{ClientId{7}, 123, {1, 2, 3}};
  const ClientInputMsg decoded = decodeClientInput(encode(msg));
  EXPECT_EQ(decoded.client, ClientId{7});
  EXPECT_EQ(decoded.clientTick, 123u);
  EXPECT_EQ(decoded.commands, msg.commands);
}

TEST(MessagesTest, StateUpdateRoundTrip) {
  const std::vector<std::uint8_t> update{9, 9, 9, 9};
  const StateUpdateMsg decoded =
      SnapshotCodec::decodeStateUpdate(SnapshotCodec::encodeStateUpdate(55, update));
  EXPECT_EQ(decoded.serverTick, 55u);
  EXPECT_EQ(decoded.update, update);
}

TEST(MessagesTest, ForwardedInputRoundTrip) {
  ForwardedInputMsg msg{EntityId{10}, EntityId{20}, {0xAA}};
  const ForwardedInputMsg decoded = decodeForwardedInput(encode(msg));
  EXPECT_EQ(decoded.target, EntityId{10});
  EXPECT_EQ(decoded.source, EntityId{20});
  EXPECT_EQ(decoded.interaction, msg.interaction);
}

TEST(MessagesTest, EntityReplicationRoundTrip) {
  EntityReplicationMsg msg;
  msg.serverTick = 9;
  msg.entities.push_back(EntitySnapshot::of(makeAvatar(1, 2, {1, 2})));
  msg.entities.push_back(EntitySnapshot::of(makeAvatar(3, 2, {4, 5})));
  msg.removed = {EntityId{77}, EntityId{88}};
  const EntityReplicationMsg decoded = decodeEntityReplication(encode(msg));
  ASSERT_EQ(decoded.entities.size(), 2u);
  EXPECT_EQ(decoded.entities[1].id, EntityId{3});
  EXPECT_EQ(decoded.removed, msg.removed);
  EXPECT_EQ(decoded.serverTick, 9u);
}

TEST(MessagesTest, MigrationRoundTrip) {
  MigrationDataMsg msg;
  msg.client = ClientId{5};
  msg.clientNode = NodeId{17};
  msg.entity = EntitySnapshot::of(makeAvatar(8, 2));
  msg.appState = {1, 2, 3, 4};
  msg.source = ServerId{1};
  const MigrationDataMsg decoded = decodeMigrationData(encode(msg));
  EXPECT_EQ(decoded.client, ClientId{5});
  EXPECT_EQ(decoded.clientNode, NodeId{17});
  EXPECT_EQ(decoded.entity.id, EntityId{8});
  EXPECT_EQ(decoded.appState, msg.appState);
  EXPECT_EQ(decoded.source, ServerId{1});

  MigrationAckMsg ack{ClientId{5}, EntityId{8}, ServerId{2}};
  const MigrationAckMsg decodedAck = decodeMigrationAck(encode(ack));
  EXPECT_EQ(decodedAck.client, ClientId{5});
  EXPECT_EQ(decodedAck.entity, EntityId{8});
  EXPECT_EQ(decodedAck.newOwner, ServerId{2});
}

TEST(MessagesTest, WrongTypeRejected) {
  ClientInputMsg msg{ClientId{1}, 0, {}};
  const ser::Frame frame = encode(msg);
  EXPECT_THROW(SnapshotCodec::decodeStateUpdate(frame), ser::DecodeError);
  EXPECT_THROW(decodeMigrationData(frame), ser::DecodeError);
}

// ---------- probes & meter ----------

TEST(CostMeterTest, ChargesCurrentPhase) {
  sim::CpuCostModel cpu;
  CostMeter meter(cpu);
  TickProbes probes;
  meter.beginTick(probes);
  meter.setPhase(Phase::kUa);
  meter.charge(10.0);
  meter.charge(5.0);
  meter.chargeTo(Phase::kAoi, 3.0);
  meter.endTick();
  EXPECT_DOUBLE_EQ(probes.phase(Phase::kUa), 15.0);
  EXPECT_DOUBLE_EQ(probes.phase(Phase::kAoi), 3.0);
  EXPECT_DOUBLE_EQ(probes.totalMicros(), 18.0);
}

TEST(CostMeterTest, NoTickNoCrash) {
  sim::CpuCostModel cpu;
  CostMeter meter(cpu);
  EXPECT_EQ(meter.charge(10.0).micros, 10);  // charges time, records nowhere
}

TEST(CostMeterTest, PhaseScopeRestores) {
  sim::CpuCostModel cpu;
  CostMeter meter(cpu);
  meter.setPhase(Phase::kSu);
  {
    PhaseScope scope(meter, Phase::kMigIni);
    EXPECT_EQ(meter.phase(), Phase::kMigIni);
  }
  EXPECT_EQ(meter.phase(), Phase::kSu);
}

TEST(TickProbesTest, TotalsAndNames) {
  TickProbes probes;
  probes.phaseMicros[static_cast<std::size_t>(Phase::kUa)] = 100.0;
  probes.phaseMicros[static_cast<std::size_t>(Phase::kSu)] = 50.0;
  EXPECT_DOUBLE_EQ(probes.totalMicros(), 150.0);
  EXPECT_EQ(probes.totalDuration().micros, 150);
  EXPECT_STREQ(phaseName(Phase::kUaDser), "t_ua_dser");
  EXPECT_STREQ(phaseName(Phase::kMigRcv), "t_mig_rcv");
}

TEST(MonitoringWindowTest, AveragesOverWindow) {
  MonitoringWindow window(SimDuration::seconds(1));
  for (int i = 0; i < 5; ++i) {
    TickProbes probes;
    probes.start = SimTime{i * 40000};
    probes.phaseMicros[static_cast<std::size_t>(Phase::kUa)] = 1000.0 * (i + 1);
    window.record(probes);
  }
  MonitoringSnapshot snapshot;
  window.fill(snapshot);
  EXPECT_NEAR(snapshot.tickAvgMs, 3.0, 1e-9);   // mean of 1..5 ms
  EXPECT_NEAR(snapshot.tickMaxMs, 5.0, 1e-9);
  EXPECT_NEAR(snapshot.phaseAvgMicros[static_cast<std::size_t>(Phase::kUa)], 3000.0, 1e-9);
}

TEST(MonitoringWindowTest, EvictsOldTicks) {
  MonitoringWindow window(SimDuration::milliseconds(100));
  TickProbes old;
  old.start = SimTime{0};
  old.phaseMicros[0] = 99000.0;
  window.record(old);
  TickProbes recent;
  recent.start = SimTime{1000000};
  recent.phaseMicros[0] = 1000.0;
  window.record(recent);
  MonitoringSnapshot snapshot;
  window.fill(snapshot);
  EXPECT_NEAR(snapshot.tickAvgMs, 1.0, 1e-9);
  EXPECT_EQ(window.sampleCount(), 1u);
}

TEST(MonitoringWindowTest, EmptyWindowSafe) {
  MonitoringWindow window;
  MonitoringSnapshot snapshot;
  window.fill(snapshot);
  EXPECT_DOUBLE_EQ(snapshot.tickAvgMs, 0.0);
  EXPECT_DOUBLE_EQ(snapshot.tickMaxMs, 0.0);
}

}  // namespace
}  // namespace roia::rtf
