// Zone sharding: grid construction and lookup, the deterministic
// inter-zone handoff protocol (state-preserving, exactly-once — even under
// drop/duplicate/reorder faults, partitions and crash-failures), the
// zone-aware RMS balance pass, and the zoned capacity model.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "game/bots.hpp"
#include "game/fps_app.hpp"
#include "model/thresholds.hpp"
#include "rms/manager.hpp"
#include "rms/model_strategy.hpp"
#include "rms/sharded_session.hpp"
#include "rtf/cluster.hpp"

namespace roia {
namespace {

// ---------- grid construction & lookup ----------

TEST(ZoneGridTest, RowMajorGeometryAndLookup) {
  game::FpsApplication app;
  rtf::Cluster cluster(app, rtf::ClusterConfig{});
  const auto zones = cluster.createZoneGrid({0, 0}, {2000, 1000}, 2, 1);
  ASSERT_EQ(zones.size(), 2u);
  EXPECT_TRUE(cluster.sharded());

  const rtf::ZoneDirectory& dir = cluster.zones();
  EXPECT_EQ(dir.zone(zones[0]).origin, (Vec2{0, 0}));
  EXPECT_EQ(dir.zone(zones[0]).extent, (Vec2{1000, 1000}));
  EXPECT_EQ(dir.zone(zones[1]).origin, (Vec2{1000, 0}));

  EXPECT_EQ(dir.zoneAt({500, 500}), zones[0]);
  EXPECT_EQ(dir.zoneAt({1500, 500}), zones[1]);
  // Zones are half-open: the shared border belongs to the right zone.
  EXPECT_EQ(dir.zoneAt({1000, 500}), zones[1]);
  EXPECT_FALSE(dir.zoneAt({-1, 500}).valid());
  EXPECT_FALSE(dir.zoneAt({2000, 500}).valid());
}

TEST(ZoneGridTest, NeighborsAreEdgeAdjacentAscending) {
  game::FpsApplication app;
  rtf::Cluster cluster(app, rtf::ClusterConfig{});
  // 3x3 grid, row-major: index r * 3 + c.
  const auto z = cluster.createZoneGrid({0, 0}, {3000, 3000}, 3, 3);
  ASSERT_EQ(z.size(), 9u);
  const rtf::ZoneDirectory& dir = cluster.zones();

  // Corner: two edge neighbors; diagonal (corner-contact) zones excluded.
  EXPECT_EQ(dir.neighbors(z[0]), (std::vector<ZoneId>{z[1], z[3]}));
  // Edge midpoint: three neighbors.
  EXPECT_EQ(dir.neighbors(z[1]), (std::vector<ZoneId>{z[0], z[2], z[4]}));
  // Center: four neighbors, ascending id.
  EXPECT_EQ(dir.neighbors(z[4]), (std::vector<ZoneId>{z[1], z[3], z[5], z[7]}));
}

// ---------- deterministic handoff ----------

/// Input provider whose avatar never moves. Tests that assert on the final
/// location of a manually-travelled client use it so the roaming bot does
/// not wander back across the border and trigger an automatic return
/// handoff before the assertions run.
class IdleProvider final : public rtf::InputProvider {
 public:
  std::vector<std::uint8_t> nextCommands(SimTime, Rng&) override { return {}; }
  void onStateUpdate(std::span<const std::uint8_t>) override {}
};

struct HandoffFixture {
  game::FpsApplication app;
  rtf::Cluster cluster;
  std::vector<ZoneId> zones;

  explicit HandoffFixture(game::FpsConfig fps = {}) : app(makeConfig(fps)), cluster(app) {
    zones = cluster.createZoneGrid({0, 0}, {2000, 1000}, 2, 1);
  }

  static game::FpsConfig makeConfig(game::FpsConfig fps) {
    // Bots roam the whole two-zone world, so they cross the border.
    fps.arenaOrigin = {0, 0};
    fps.arenaExtent = {2000, 1000};
    return fps;
  }

  /// Active avatar records of `client` across all live servers.
  std::size_t activeAvatarCount(ClientId client) const {
    std::size_t count = 0;
    for (const ServerId id : cluster.serverIds()) {
      const rtf::Server& server = cluster.server(id);
      if (server.crashed()) continue;
      server.world().forEach([&](rtf::ConstEntityRef e) {
        if (e.client == client && e.owner == id) ++count;
      });
    }
    return count;
  }
};

TEST(ZoneHandoffTest, TravelPreservesEntityState) {
  HandoffFixture f;
  const ServerId serverA = f.cluster.addServer(f.zones[0]);
  const ServerId serverB = f.cluster.addServer(f.zones[1]);
  const ClientId c = f.cluster.connectClient(f.zones[0], std::make_unique<IdleProvider>());
  f.cluster.run(SimDuration::milliseconds(500));

  const EntityId avatar = f.cluster.client(c).avatar();
  auto record = f.cluster.server(serverA).world().find(avatar);
  ASSERT_TRUE(record.has_value());
  record->health = 57.5;  // distinctive state the handoff must carry over

  ASSERT_TRUE(f.cluster.travelClient(c, f.zones[1]));
  f.cluster.run(SimDuration::milliseconds(500));

  // Same entity identity on the target, removed from the source.
  EXPECT_EQ(f.cluster.clientServer(c), serverB);
  EXPECT_EQ(f.cluster.client(c).avatar(), avatar);
  EXPECT_FALSE(f.cluster.server(serverA).world().find(avatar).has_value());
  const auto adopted = f.cluster.server(serverB).world().find(avatar);
  ASSERT_TRUE(adopted.has_value());
  EXPECT_EQ(adopted->owner, serverB);
  EXPECT_EQ(adopted->client, c);
  EXPECT_DOUBLE_EQ(adopted->health, 57.5);
  EXPECT_EQ(f.activeAvatarCount(c), 1u);
}

TEST(ZoneHandoffTest, BorderCrossingsHandOffAutomatically) {
  rms::ShardedSessionConfig config;
  config.gridCols = 2;
  config.gridRows = 1;
  config.replicasPerZone = 1;
  config.users = 40;
  config.warmup = SimDuration::seconds(2);
  config.duration = SimDuration::seconds(6);
  config.seed = 7;
  const rms::ShardedSessionSummary summary = rms::runShardedSession(config);

  EXPECT_EQ(summary.zones, 2u);
  EXPECT_EQ(summary.users, 40u);
  // Bots roaming a 2-zone world cross the border; every crossing is a
  // completed handoff and nobody is lost or duplicated.
  EXPECT_GT(summary.handoffsReceived, 0u);
  EXPECT_TRUE(summary.conserved()) << "duplicates=" << summary.duplicateAvatars
                                   << " missing=" << summary.missingAvatars;
}

TEST(ZoneHandoffTest, BorderShadowsAppearWithinBand) {
  rms::ShardedSessionConfig config;
  config.gridCols = 2;
  config.gridRows = 1;
  config.replicasPerZone = 1;
  config.users = 60;
  config.borderWidth = 220.0;
  config.warmup = SimDuration::seconds(2);
  config.duration = SimDuration::seconds(4);
  config.seed = 11;
  const rms::ShardedSessionSummary summary = rms::runShardedSession(config);
  // With a wide border band some of the 60 roamers sit near the border at
  // session end, mirrored into the neighbor zone as border shadows.
  EXPECT_GT(summary.borderShadows, 0u);
  EXPECT_TRUE(summary.conserved());
}

// ---------- exactly-once under chaos ----------

TEST(ZoneChaosTest, ExactlyOnceUnderDropDuplicateReorder) {
  rms::ShardedSessionConfig config;
  config.gridCols = 2;
  config.gridRows = 1;
  config.replicasPerZone = 1;
  config.users = 40;
  config.warmup = SimDuration::seconds(2);
  config.duration = SimDuration::seconds(8);
  config.seed = 23;
  net::FaultParams faults;
  faults.dropProbability = 0.05;
  faults.duplicateProbability = 0.05;
  faults.jitterMax = SimDuration::milliseconds(20);
  faults.reorderProbability = 0.5;
  config.linkFaults = faults;
  const rms::ShardedSessionSummary summary = rms::runShardedSession(config);

  EXPECT_GT(summary.handoffsReceived, 0u);
  EXPECT_TRUE(summary.conserved()) << "duplicates=" << summary.duplicateAvatars
                                   << " missing=" << summary.missingAvatars;
}

TEST(ZoneChaosTest, PartitionDuringTravelHealsWithoutLossOrDuplication) {
  HandoffFixture f;
  const ServerId serverA = f.cluster.addServer(f.zones[0]);
  const ServerId serverB = f.cluster.addServer(f.zones[1]);
  const ClientId c = f.cluster.connectClient(f.zones[0], std::make_unique<IdleProvider>());
  f.cluster.run(SimDuration::milliseconds(500));

  // Cut the source server off just as the handoff starts; heal after 1 s.
  net::FaultInjector& faults = f.cluster.enableFaultInjection();
  const SimTime now = f.cluster.simulation().now();
  faults.partition("split", {f.cluster.server(serverA).node()}, now,
                   now + SimDuration::seconds(1));
  ASSERT_TRUE(f.cluster.travelClient(c, f.zones[1]));
  f.cluster.run(SimDuration::seconds(1));  // partition active: handoff stalls
  f.cluster.run(SimDuration::seconds(3));  // healed: retries complete it

  EXPECT_EQ(f.cluster.clientServer(c), serverB);
  EXPECT_EQ(f.activeAvatarCount(c), 1u);
  EXPECT_EQ(f.cluster.zoneUserCount(f.zones[0]), 0u);
  EXPECT_EQ(f.cluster.zoneUserCount(f.zones[1]), 1u);
}

TEST(ZoneChaosTest, TargetCrashDuringHandoffNeverLosesTheEntity) {
  HandoffFixture f;
  f.cluster.addServer(f.zones[0]);
  const ServerId b1 = f.cluster.addServer(f.zones[1]);
  const ServerId b2 = f.cluster.addServer(f.zones[1]);
  // Park a user on b1 so the travel targets the emptier b2.
  f.cluster.connectClientTo(b1, std::make_unique<game::BotProvider>());
  const ClientId c = f.cluster.connectClient(f.zones[0], std::make_unique<game::BotProvider>());
  f.cluster.run(SimDuration::milliseconds(500));

  ASSERT_TRUE(f.cluster.travelClient(c, f.zones[1]));
  f.cluster.crashServer(b2);  // target dies with the handoff in flight
  f.cluster.run(SimDuration::milliseconds(500));
  f.cluster.recoverCrashedServer(b2);  // aborts hand-overs targeting it
  f.cluster.run(SimDuration::seconds(2));

  // Whatever happened to the travel, the entity exists exactly once on a
  // live server and the client is still being served.
  EXPECT_EQ(f.activeAvatarCount(c), 1u);
  EXPECT_TRUE(f.cluster.hasClient(c));
  EXPECT_NE(f.cluster.clientServer(c), b2);
}

TEST(ZoneChaosTest, FastPingPongHandoffNeverLosesTheEntity) {
  // Regression: an adopted entity can jump back across the border in the very
  // tick it arrives (respawn/teleport), so the target re-initiates a hand-over
  // to the original source while the source's own ack is still in flight.
  // Without version-echoing acks the source re-acked the superseding hand-over
  // without adopting it and both sides then retired their copies — the entity
  // vanished everywhere. This dense, long-running config reproduced exactly
  // that loss before the fix.
  rms::ShardedSessionConfig config;
  config.gridCols = 2;
  config.gridRows = 1;
  config.zoneExtent = Vec2{1000.0, 1000.0};
  config.replicasPerZone = 2;
  config.borderWidth = config.fps.aoiRadius;
  config.users = 632;
  config.warmup = SimDuration::seconds(3);
  config.duration = SimDuration::seconds(10);
  config.seed = 9000 + config.gridCols * 17 + config.users;
  const rms::ShardedSessionSummary summary = rms::runShardedSession(config);

  EXPECT_GT(summary.handoffsReceived, 0u);
  EXPECT_TRUE(summary.conserved()) << "duplicates=" << summary.duplicateAvatars
                                   << " missing=" << summary.missingAvatars;
}

// ---------- zone-aware RMS: the balance pass ----------

model::TickModel paperLikeTickModel() {
  model::ModelParameters params;
  params.set(model::ParamKind::kUaDser, model::ParamFunction::linear(1.0, 0.0015));
  params.set(model::ParamKind::kUa, model::ParamFunction::quadratic(1.2, 0.009, 1.2e-4));
  params.set(model::ParamKind::kAoi, model::ParamFunction::quadratic(0.1, 0.45, 0.8e-4));
  params.set(model::ParamKind::kSu, model::ParamFunction::linear(1.5, 0.2));
  params.set(model::ParamKind::kFaDser, model::ParamFunction::linear(0.55, 0.0007));
  params.set(model::ParamKind::kFa, model::ParamFunction::linear(0.9, 0.0023));
  params.set(model::ParamKind::kMigIni, model::ParamFunction::linear(150.0, 5.0));
  params.set(model::ParamKind::kMigRcv, model::ParamFunction::linear(80.0, 2.2));
  return model::TickModel(params);
}

TEST(ZoneRmsTest, BalancePassOrdersCrossZoneHandoffs) {
  HandoffFixture f;
  const ServerId serverA = f.cluster.addServer(f.zones[0]);
  f.cluster.addServer(f.zones[1]);

  // A huge improvement-factor c makes l_max = 1, so the crowded zone is
  // already at maximum replication: the only way out is cross-zone handoff.
  rms::ModelStrategyConfig strategyConfig;
  strategyConfig.upperTickMs = 40.0;
  strategyConfig.improvementFactorC = 0.9;
  auto strategy =
      std::make_unique<rms::ModelDrivenStrategy>(paperLikeTickModel(), strategyConfig);
  const std::size_t trigger = static_cast<std::size_t>(
      strategyConfig.triggerFraction * static_cast<double>(strategy->nMaxFor(1)));

  // Overload zone 0 past its replication trigger; zone 1 stays near-empty.
  // The manager starts immediately with a short control period: roaming bots
  // diffuse across the border fast, and the balance pass has to observe the
  // overload before natural crossings erase it.
  for (std::size_t i = 0; i < trigger + 40; ++i) {
    f.cluster.connectClientTo(serverA, std::make_unique<game::BotProvider>());
  }

  rms::RmsConfig rmsConfig;
  rmsConfig.controlPeriod = SimDuration::milliseconds(500);
  rms::RmsManager manager(f.cluster, f.zones, std::move(strategy), rms::ResourcePool{},
                          rmsConfig);
  manager.start();
  f.cluster.run(SimDuration::seconds(6));
  manager.stop();

  EXPECT_GT(manager.zoneHandoffsOrdered(), 0u);
  // The timeline records the balance pass the period it fired.
  std::size_t recorded = 0;
  for (const rms::TimelinePoint& p : manager.timeline()) recorded += p.handoffsOrdered;
  EXPECT_EQ(recorded, manager.zoneHandoffsOrdered());
  // Users actually arrived in the quiet zone.
  EXPECT_GT(f.cluster.zoneUserCount(f.zones[1]), 0u);
}

// ---------- zoned capacity model ----------

TEST(ZoneModelTest, NMaxZonedMatchesNMaxWithoutCoordination) {
  const model::TickModel tickModel = paperLikeTickModel();
  for (const std::size_t l : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    EXPECT_EQ(model::nMaxZoned(tickModel, l, 0, 40000.0, 4, 0.5),
              model::nMax(tickModel, l, 0, 40000.0));
  }
}

TEST(ZoneModelTest, CoordinationTermShrinksCapacityMonotonically) {
  model::TickModel tickModel = paperLikeTickModel();
  model::CoordinationParams coordination;
  coordination.perNeighborMicros = 500.0;
  coordination.perBorderEntityMicros = 10.0;
  tickModel.setCoordination(coordination);

  const std::size_t base = model::nMaxZoned(tickModel, 2, 0, 40000.0, 0, 0.0);
  EXPECT_EQ(base, model::nMax(tickModel, 2, 0, 40000.0));

  std::size_t previous = base;
  for (const std::size_t neighbors : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const std::size_t n = model::nMaxZoned(tickModel, 2, 0, 40000.0, neighbors, 0.2);
    EXPECT_LE(n, previous);
    previous = n;
  }
  EXPECT_LT(previous, base);

  previous = base;
  for (const double share : {0.1, 0.3, 0.6}) {
    const std::size_t n = model::nMaxZoned(tickModel, 2, 0, 40000.0, 1, share);
    EXPECT_LE(n, previous);
    previous = n;
  }
}

}  // namespace
}  // namespace roia
