// Property tests for the interest-management subsystem.
//
// 1. Equivalence: across seeds x populations x radii x interest scale, the
//    flat grid returns exactly the Euclidean visible sets — the grid is an
//    exact index, never an approximation — and the encoded state updates
//    are byte-identical, so switching the IM algorithm can never change
//    what a client receives.
// 2. Churn oracle: a grid maintained incrementally across arbitrary
//    move / spawn / despawn / handoff churn answers every query exactly
//    like a grid rebuilt from scratch, with the Euclidean scan as the
//    independent ground truth.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "game/fps_app.hpp"
#include "game/interest.hpp"
#include "rtf/world.hpp"

namespace roia::game {
namespace {

struct PropertyFixture {
  rtf::World world{ZoneId{1}};
  sim::CpuCostModel cpu;
  rtf::CostMeter meter{cpu};
  rtf::TickProbes probes;

  PropertyFixture() { meter.beginTick(probes); }

  void populate(std::size_t n, std::uint64_t seed, Vec2 extent = {1000, 1000}) {
    Rng rng(seed);
    for (std::uint64_t id = 1; id <= n; ++id) {
      rtf::EntityRecord e;
      e.id = EntityId{id};
      e.kind = id % 4 == 0 ? rtf::EntityKind::kNpc : rtf::EntityKind::kAvatar;
      e.owner = ServerId{1};
      e.client = ClientId{id};
      e.position = {rng.uniform(0, extent.x), rng.uniform(0, extent.y)};
      world.upsert(e);
    }
  }
};

std::vector<EntityId> idsOfSlots(const rtf::World& world, std::span<const std::uint32_t> slots) {
  std::vector<EntityId> ids;
  ids.reserve(slots.size());
  for (const std::uint32_t slot : slots) ids.push_back(EntityId{world.ids()[slot]});
  return ids;
}

std::vector<EntityId> queryOf(InterestPolicy& policy, PropertyFixture& f,
                              rtf::ConstEntityRef viewer, double radius) {
  std::vector<std::uint32_t> out;
  policy.query(f.world, viewer, radius, f.meter, out);
  return idsOfSlots(f.world, out);
}

TEST(InterestProperty, GridMatchesEuclideanAcrossSeedsPopulationsRadiiAndScale) {
  for (const std::uint64_t seed : {11ULL, 97ULL}) {
    for (const std::size_t population : {std::size_t{3}, std::size_t{40}, std::size_t{150}}) {
      for (const double radius : {40.0, 110.0, 300.0}) {
        for (const double scale : {1.0, 0.55}) {
          PropertyFixture f;
          f.populate(population, seed);
          f.world.setInterestScale(scale);

          // Fidelity wrappers so the world's interest scale is honored the
          // same way the overload ladder applies it in production.
          FidelityScaledInterest euclid(std::make_unique<EuclideanInterest>());
          FidelityScaledInterest grid(std::make_unique<GridInterest>(radius * 0.5));
          euclid.prepare(f.world, f.meter);
          grid.prepare(f.world, f.meter);

          f.world.forEach([&](rtf::ConstEntityRef viewer) {
            ASSERT_EQ(queryOf(euclid, f, viewer, radius), queryOf(grid, f, viewer, radius))
                << "seed=" << seed << " n=" << population << " r=" << radius
                << " scale=" << scale << " viewer=" << viewer.id.value;
          });
        }
      }
    }
  }
}

TEST(InterestProperty, StateUpdatesByteIdenticalAcrossPolicies) {
  for (const std::uint64_t seed : {5ULL, 23ULL}) {
    PropertyFixture f;
    f.populate(60, seed);

    FpsConfig euclidConfig;
    FpsConfig gridConfig;
    applyGridInterestProfile(gridConfig);
    FpsApplication euclidApp(euclidConfig);
    FpsApplication gridApp(gridConfig);
    euclidApp.onTickBegin(f.world, f.meter);
    gridApp.onTickBegin(f.world, f.meter);

    f.world.forEach([&](rtf::ConstEntityRef viewer) {
      if (viewer.kind != rtf::EntityKind::kAvatar) return;
      std::vector<std::uint32_t> visibleEuclid;
      std::vector<std::uint32_t> visibleGrid;
      euclidApp.computeAreaOfInterest(f.world, viewer, f.meter, visibleEuclid);
      gridApp.computeAreaOfInterest(f.world, viewer, f.meter, visibleGrid);
      ASSERT_EQ(visibleEuclid, visibleGrid) << "seed=" << seed << " viewer=" << viewer.id.value;

      std::vector<std::uint8_t> bytesEuclid;
      std::vector<std::uint8_t> bytesGrid;
      euclidApp.buildStateUpdate(f.world, viewer, visibleEuclid, f.meter, bytesEuclid);
      gridApp.buildStateUpdate(f.world, viewer, visibleGrid, f.meter, bytesGrid);
      ASSERT_EQ(bytesEuclid, bytesGrid) << "seed=" << seed << " viewer=" << viewer.id.value;
    });
  }
}

TEST(InterestProperty, IncrementalGridMatchesFreshGridUnderChurn) {
  constexpr double kRadius = 110.0;
  constexpr double kCell = 55.0;
  constexpr Vec2 kExtent{1000, 1000};

  PropertyFixture f;
  f.populate(80, 1234);
  Rng rng(4321);
  GridInterest incremental(kCell);
  std::vector<std::uint64_t> ids;
  for (std::uint64_t id = 1; id <= 80; ++id) ids.push_back(id);
  std::uint64_t nextId = 81;

  for (int round = 0; round < 40; ++round) {
    // Mutate: per-entity jitter moves plus occasional teleports exercise
    // the incremental relocation path; every tenth round teleports most of
    // the world, tripping the moved*4 > n full-rebuild heuristic.
    const bool shuffleRound = round % 10 == 9;
    for (const std::uint64_t id : ids) {
      auto entity = f.world.find(EntityId{id});
      ASSERT_TRUE(entity.has_value());
      const double roll = rng.uniform(0.0, 1.0);
      if (shuffleRound ? roll < 0.6 : roll < 0.05) {
        entity->position = {rng.uniform(0, kExtent.x), rng.uniform(0, kExtent.y)};
      } else if (roll < 0.55) {
        entity->position.x += rng.uniform(-30, 30);
        entity->position.y += rng.uniform(-30, 30);
      }
      if (rng.uniform(0.0, 1.0) < 0.3) {  // handoff: ownership must not matter
        entity->owner = ServerId{rng.uniformInt(1, 4)};
      }
    }
    if (rng.uniform(0.0, 1.0) < 0.4) {  // spawn (bumps the structural epoch)
      rtf::EntityRecord e;
      e.id = EntityId{nextId};
      e.kind = nextId % 3 == 0 ? rtf::EntityKind::kNpc : rtf::EntityKind::kAvatar;
      e.owner = ServerId{1};
      e.client = ClientId{nextId};
      e.position = {rng.uniform(0, kExtent.x), rng.uniform(0, kExtent.y)};
      f.world.upsert(e);
      ids.push_back(nextId);
      ++nextId;
    }
    if (!ids.empty() && rng.uniform(0.0, 1.0) < 0.3) {  // despawn
      const std::size_t victim = rng.uniformInt(0, ids.size() - 1);
      ASSERT_TRUE(f.world.remove(EntityId{ids[victim]}));
      ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(victim));
    }

    incremental.prepare(f.world, f.meter);
    GridInterest fresh(kCell);
    fresh.prepare(f.world, f.meter);
    EuclideanInterest oracle;
    oracle.prepare(f.world, f.meter);

    f.world.forEach([&](rtf::ConstEntityRef viewer) {
      const auto truth = queryOf(oracle, f, viewer, kRadius);
      ASSERT_EQ(truth, queryOf(incremental, f, viewer, kRadius))
          << "round=" << round << " viewer=" << viewer.id.value;
      ASSERT_EQ(truth, queryOf(fresh, f, viewer, kRadius))
          << "round=" << round << " viewer=" << viewer.id.value;
    });
  }
}

}  // namespace
}  // namespace roia::game
