// Tests for the simulated network: latency/bandwidth timing, per-link FIFO
// ordering, node detachment, multicast and traffic accounting.
#include <gtest/gtest.h>

#include <vector>

#include "net/network.hpp"
#include "serialize/message.hpp"
#include "sim/simulation.hpp"

namespace roia::net {
namespace {

ser::Frame makeFrame(std::size_t payloadBytes, std::uint8_t fill = 0x42) {
  ser::Frame frame;
  frame.type = ser::MessageType::kControl;
  frame.payload.assign(payloadBytes, fill);
  return frame;
}

struct Fixture {
  sim::Simulation sim;
  Network net{sim};
};

TEST(NetworkTest, DeliversWithLatency) {
  Fixture f;
  std::vector<std::int64_t> arrivals;
  const NodeId a = f.net.addNode(nullptr);
  const NodeId b = f.net.addNode(
      [&](NodeId, const ser::Frame&) { arrivals.push_back(f.sim.now().micros); });
  LinkParams params;
  params.latency = SimDuration::milliseconds(5);
  params.bandwidthBytesPerSec = 1e12;  // negligible transmit time
  f.net.setDefaultLinkParams(params);

  f.net.send(a, b, makeFrame(10));
  f.sim.runAll();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], 5000);
}

TEST(NetworkTest, BandwidthAddsTransmitTime) {
  Fixture f;
  std::vector<std::int64_t> arrivals;
  const NodeId a = f.net.addNode(nullptr);
  const NodeId b = f.net.addNode(
      [&](NodeId, const ser::Frame&) { arrivals.push_back(f.sim.now().micros); });
  LinkParams params;
  params.latency = SimDuration::zero();
  params.bandwidthBytesPerSec = 1e6;  // 1 MB/s -> 1 us per byte
  f.net.setDefaultLinkParams(params);

  const std::size_t wire = f.net.send(a, b, makeFrame(991));
  EXPECT_EQ(wire, ser::encodedFrameSize(991));
  f.sim.runAll();
  ASSERT_EQ(arrivals.size(), 1u);
  // 1 us per byte; floating-point truncation may shave one microsecond.
  EXPECT_NEAR(static_cast<double>(arrivals[0]), static_cast<double>(wire), 1.0);
}

TEST(NetworkTest, PerLinkFifoOrderEvenWithVaryingSizes) {
  Fixture f;
  std::vector<int> order;
  const NodeId a = f.net.addNode(nullptr);
  const NodeId b = f.net.addNode([&](NodeId, const ser::Frame& frame) {
    order.push_back(static_cast<int>(frame.payload.size()));
  });
  LinkParams params;
  params.latency = SimDuration::milliseconds(1);
  params.bandwidthBytesPerSec = 1e5;
  f.net.setDefaultLinkParams(params);

  // Big frame first, then a small one that would naively arrive earlier.
  f.net.send(a, b, makeFrame(5000));
  f.net.send(a, b, makeFrame(1));
  f.sim.runAll();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 5000);
  EXPECT_EQ(order[1], 1);
}

TEST(NetworkTest, SenderIdIsReported) {
  Fixture f;
  NodeId seen{};
  const NodeId a = f.net.addNode(nullptr);
  const NodeId b = f.net.addNode([&](NodeId from, const ser::Frame&) { seen = from; });
  f.net.send(a, b, makeFrame(1));
  f.sim.runAll();
  EXPECT_EQ(seen, a);
}

TEST(NetworkTest, RemovedNodeDropsInFlightFrames) {
  Fixture f;
  int delivered = 0;
  const NodeId a = f.net.addNode(nullptr);
  const NodeId b = f.net.addNode([&](NodeId, const ser::Frame&) { ++delivered; });
  f.net.send(a, b, makeFrame(10));
  f.net.removeNode(b);
  f.sim.runAll();
  EXPECT_EQ(delivered, 0);
  EXPECT_FALSE(f.net.nodeAttached(b));
  EXPECT_TRUE(f.net.nodeAttached(a));
}

TEST(NetworkTest, SendToUnknownNodeThrows) {
  Fixture f;
  const NodeId a = f.net.addNode(nullptr);
  EXPECT_THROW(f.net.send(a, NodeId{99}, makeFrame(1)), std::out_of_range);
}

TEST(NetworkTest, MulticastReachesAll) {
  Fixture f;
  int count = 0;
  const NodeId a = f.net.addNode(nullptr);
  std::vector<NodeId> group;
  for (int i = 0; i < 5; ++i) {
    group.push_back(f.net.addNode([&](NodeId, const ser::Frame&) { ++count; }));
  }
  f.net.multicast(a, group, makeFrame(8));
  f.sim.runAll();
  EXPECT_EQ(count, 5);
}

TEST(NetworkTest, TrafficAccounting) {
  Fixture f;
  const NodeId a = f.net.addNode(nullptr);
  const NodeId b = f.net.addNode([](NodeId, const ser::Frame&) {});
  const std::size_t w1 = f.net.send(a, b, makeFrame(100));
  const std::size_t w2 = f.net.send(a, b, makeFrame(200));
  f.sim.runAll();

  EXPECT_EQ(f.net.nodeEgress(a).messages, 2u);
  EXPECT_EQ(f.net.nodeEgress(a).bytes, w1 + w2);
  EXPECT_EQ(f.net.nodeIngress(b).messages, 2u);
  EXPECT_EQ(f.net.nodeIngress(b).bytes, w1 + w2);
  EXPECT_EQ(f.net.nodeIngress(a).messages, 0u);
  EXPECT_EQ(f.net.totals().bytes, w1 + w2);
}

TEST(NetworkTest, PerLinkOverridesBeatDefaults) {
  Fixture f;
  std::vector<std::int64_t> arrivals;
  const NodeId a = f.net.addNode(nullptr);
  const NodeId b = f.net.addNode(
      [&](NodeId, const ser::Frame&) { arrivals.push_back(f.sim.now().micros); });
  const NodeId c = f.net.addNode(
      [&](NodeId, const ser::Frame&) { arrivals.push_back(f.sim.now().micros); });
  LinkParams slow;
  slow.latency = SimDuration::milliseconds(50);
  slow.bandwidthBytesPerSec = 1e12;
  f.net.setLinkParams(a, c, slow);
  LinkParams fast;
  fast.latency = SimDuration::microseconds(100);
  fast.bandwidthBytesPerSec = 1e12;
  f.net.setDefaultLinkParams(fast);

  f.net.send(a, b, makeFrame(1));  // default link
  f.net.send(a, c, makeFrame(1));  // overridden link
  f.sim.runAll();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], 100);
  EXPECT_EQ(arrivals[1], 50000);
}

TEST(NetworkTest, RemoveNodeDropsInFlightFrames) {
  Fixture f;
  int delivered = 0;
  const NodeId a = f.net.addNode(nullptr);
  const NodeId b = f.net.addNode([&](NodeId, const ser::Frame&) { ++delivered; });
  LinkParams params;
  params.latency = SimDuration::milliseconds(5);
  params.bandwidthBytesPerSec = 1e12;
  f.net.setDefaultLinkParams(params);

  f.net.send(a, b, makeFrame(10));
  f.net.send(a, b, makeFrame(10));
  // Detach before the frames land: they must vanish, not crash or deliver.
  f.sim.runUntil(SimTime{1000});
  f.net.removeNode(b);
  f.sim.runAll();
  EXPECT_EQ(delivered, 0);
  // Egress was still charged at send time; ingress never happened.
  EXPECT_EQ(f.net.nodeEgress(a).messages, 2u);
  EXPECT_EQ(f.net.nodeIngress(b).messages, 0u);
}

TEST(NetworkTest, MulticastAccountsPerRecipient) {
  Fixture f;
  int atB = 0, atC = 0;
  const NodeId a = f.net.addNode(nullptr);
  const NodeId b = f.net.addNode([&](NodeId, const ser::Frame&) { ++atB; });
  const NodeId c = f.net.addNode([&](NodeId, const ser::Frame&) { ++atC; });

  f.net.multicast(a, {b, c}, makeFrame(100));
  f.sim.runAll();
  EXPECT_EQ(atB, 1);
  EXPECT_EQ(atC, 1);

  // A multicast is n unicasts on the wire: egress and the global totals
  // count one message per recipient, each of the same wire size.
  const std::size_t wire = ser::encodedFrameSize(100);
  EXPECT_EQ(f.net.nodeEgress(a).messages, 2u);
  EXPECT_EQ(f.net.nodeEgress(a).bytes, 2 * wire);
  EXPECT_EQ(f.net.nodeIngress(b).messages, 1u);
  EXPECT_EQ(f.net.nodeIngress(b).bytes, wire);
  EXPECT_EQ(f.net.nodeIngress(c).messages, 1u);
  EXPECT_EQ(f.net.totals().messages, 2u);
  EXPECT_EQ(f.net.totals().bytes, 2 * wire);
}

TEST(NetworkTest, HandlerReplacement) {
  Fixture f;
  int first = 0, second = 0;
  const NodeId a = f.net.addNode(nullptr);
  const NodeId b = f.net.addNode([&](NodeId, const ser::Frame&) { ++first; });
  f.net.send(a, b, makeFrame(1));
  f.sim.runAll();
  f.net.setHandler(b, [&](NodeId, const ser::Frame&) { ++second; });
  f.net.send(a, b, makeFrame(1));
  f.sim.runAll();
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 1);
}

}  // namespace
}  // namespace roia::net
