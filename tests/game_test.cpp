// Tests for the FPS demo application: command/update codecs, game mechanics
// (movement, attacks, respawn, AOI), cost-shape properties that the paper's
// parameter analysis relies on, bots and workload scenarios.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <utility>

#include "game/bots.hpp"
#include "game/commands.hpp"
#include "game/fps_app.hpp"
#include "game/scenario.hpp"
#include "game/state_update.hpp"
#include "rtf/cluster.hpp"

namespace roia::game {
namespace {

// Test-side convenience over the out-param encode API (the value-returning
// overload was removed: it allocated on the hot path).
std::vector<std::uint8_t> encodedStateUpdate(const StateUpdatePayload& payload) {
  std::vector<std::uint8_t> out;
  encodeStateUpdate(payload, out);
  return out;
}

// ---------- codecs ----------

TEST(CommandsTest, EmptyBatch) {
  const CommandBatch decoded = decodeCommands(encodeCommands(CommandBatch{}));
  EXPECT_TRUE(decoded.empty());
}

TEST(CommandsTest, MoveOnlyRoundTrip) {
  CommandBatch batch;
  batch.move = MoveCommand{{0.6, -0.8}};
  const CommandBatch decoded = decodeCommands(encodeCommands(batch));
  ASSERT_TRUE(decoded.move.has_value());
  EXPECT_FALSE(decoded.attack.has_value());
  EXPECT_NEAR(decoded.move->direction.x, 0.6, 1e-6);
  EXPECT_NEAR(decoded.move->direction.y, -0.8, 1e-6);
}

TEST(CommandsTest, FullBatchRoundTrip) {
  CommandBatch batch;
  batch.move = MoveCommand{{1, 0}};
  batch.attack = AttackCommand{EntityId{4242}, {0, 1}};
  const CommandBatch decoded = decodeCommands(encodeCommands(batch));
  ASSERT_TRUE(decoded.attack.has_value());
  EXPECT_EQ(decoded.attack->target, EntityId{4242});
  EXPECT_NEAR(decoded.attack->aim.y, 1.0, 1e-6);
}

TEST(CommandsTest, AttackGrowsPayload) {
  CommandBatch moveOnly;
  moveOnly.move = MoveCommand{{1, 0}};
  CommandBatch both = moveOnly;
  both.attack = AttackCommand{EntityId{1}, {1, 0}};
  // More commands -> more bytes -> more deserialization cost (the paper's
  // linear t_ua_dser argument).
  EXPECT_GT(encodeCommands(both).size(), encodeCommands(moveOnly).size());
}

TEST(CommandsTest, InteractionRoundTrip) {
  const Interaction decoded =
      decodeInteraction(encodeInteraction({Interaction::Kind::kAttack, 12.5}));
  EXPECT_EQ(decoded.kind, Interaction::Kind::kAttack);
  EXPECT_DOUBLE_EQ(decoded.damage, 12.5);
  const Interaction credit =
      decodeInteraction(encodeInteraction({Interaction::Kind::kKillCredit, 0.0}));
  EXPECT_EQ(credit.kind, Interaction::Kind::kKillCredit);
}

TEST(StateUpdateTest, RoundTrip) {
  StateUpdatePayload payload;
  payload.self = {EntityId{1}, 10.0f, 20.0f, 90.0f};
  payload.visible.push_back({EntityId{2}, 1.0f, 2.0f, 50.0f});
  payload.visible.push_back({EntityId{3}, -1.0f, -2.0f, 100.0f});
  const StateUpdatePayload decoded = decodeStateUpdate(encodedStateUpdate(payload));
  EXPECT_EQ(decoded.self.id, EntityId{1});
  ASSERT_EQ(decoded.visible.size(), 2u);
  EXPECT_EQ(decoded.visible[1].id, EntityId{3});
  EXPECT_FLOAT_EQ(decoded.visible[1].health, 100.0f);
}

TEST(StateUpdateTest, SizeGrowsLinearlyWithVisible) {
  StateUpdatePayload small, large;
  small.self = large.self = {EntityId{1}, 0, 0, 100};
  for (int i = 0; i < 10; ++i) small.visible.push_back({EntityId{static_cast<std::uint64_t>(i)}, 0, 0, 100});
  for (int i = 0; i < 20; ++i) large.visible.push_back({EntityId{static_cast<std::uint64_t>(i)}, 0, 0, 100});
  const std::size_t sSmall = encodedStateUpdate(small).size();
  const std::size_t sLarge = encodedStateUpdate(large).size();
  EXPECT_NEAR(static_cast<double>(sLarge - sSmall), 10.0 * 13.0, 25.0);
}

// ---------- game mechanics through the application interface ----------

struct AppFixture {
  FpsConfig config;
  FpsApplication app;
  rtf::World world{ZoneId{1}};
  sim::CpuCostModel cpu;
  rtf::CostMeter meter{cpu};
  rtf::TickProbes probes;
  Rng rng{7};

  struct NullSink : rtf::ForwardSink {
    std::vector<rtf::ForwardedInputMsg> forwarded;
    void forwardInteraction(EntityId target, EntityId source,
                            std::vector<std::uint8_t> payload) override {
      forwarded.push_back({target, source, std::move(payload)});
    }
  } sink;

  explicit AppFixture(FpsConfig c = {}) : config(c), app(c) { meter.beginTick(probes); }

  // Returns the id, not a reference: World's contiguous storage invalidates
  // records on insert, so tests grab references via entity() after all adds.
  EntityId addAvatar(std::uint64_t id, ServerId owner, Vec2 pos, double health = 100.0) {
    rtf::EntityRecord e;
    e.id = EntityId{id};
    e.kind = rtf::EntityKind::kAvatar;
    e.zone = ZoneId{1};
    e.owner = owner;
    e.client = ClientId{id};
    e.position = pos;
    e.health = health;
    e.version = 1;
    return world.upsert(e).id;
  }

  rtf::EntityRef entity(std::uint64_t id) { return *world.find(EntityId{id}); }

  std::uint32_t slot(std::uint64_t id) {
    return static_cast<std::uint32_t>(world.slotOf(EntityId{id}));
  }

  void userInput(rtf::EntityRef avatar, const CommandBatch& batch) {
    rtf::PhaseScope scope(meter, rtf::Phase::kUa);
    const auto bytes = encodeCommands(batch);
    app.applyUserInput(world, avatar, bytes, meter, sink, rng);
  }
};

TEST(FpsAppTest, MoveIntegratesPosition) {
  AppFixture f;
  f.addAvatar(1, ServerId{1}, {100, 100});
  auto avatar = f.entity(1);
  CommandBatch batch;
  batch.move = MoveCommand{{1, 0}};
  f.userInput(avatar, batch);
  // One tick of 40 ms at 80 units/s = 3.2 units east.
  EXPECT_NEAR(avatar.position.x, 103.2, 1e-9);
  EXPECT_NEAR(avatar.position.y, 100.0, 1e-9);
  EXPECT_GT(f.probes.phase(rtf::Phase::kUa), 0.0);
}

TEST(FpsAppTest, MoveClampsToArena) {
  AppFixture f;
  f.addAvatar(1, ServerId{1}, {999.5, 0.5});
  auto avatar = f.entity(1);
  CommandBatch batch;
  batch.move = MoveCommand{{1, -1}};
  for (int i = 0; i < 10; ++i) f.userInput(avatar, batch);
  EXPECT_LE(avatar.position.x, 1000.0);
  EXPECT_GE(avatar.position.y, 0.0);
}

TEST(FpsAppTest, LocalAttackDamagesTarget) {
  AppFixture f;
  f.addAvatar(1, ServerId{1}, {0, 0});
  f.addAvatar(2, ServerId{1}, {50, 0});
  auto attacker = f.entity(1);
  auto victim = f.entity(2);
  CommandBatch batch;
  batch.attack = AttackCommand{victim.id, {1, 0}};
  f.userInput(attacker, batch);
  EXPECT_DOUBLE_EQ(victim.health, 92.0);  // default damage 8
  EXPECT_TRUE(f.sink.forwarded.empty());
}

TEST(FpsAppTest, AttackOutOfRangeMisses) {
  AppFixture f;
  f.addAvatar(1, ServerId{1}, {0, 0});
  f.addAvatar(2, ServerId{1}, {900, 900});  // way beyond 260
  auto attacker = f.entity(1);
  auto victim = f.entity(2);
  CommandBatch batch;
  batch.attack = AttackCommand{victim.id, {1, 1}};
  f.userInput(attacker, batch);
  EXPECT_DOUBLE_EQ(victim.health, 100.0);
}

TEST(FpsAppTest, AttackOnShadowForwards) {
  AppFixture f;
  f.addAvatar(1, ServerId{1}, {0, 0});
  f.addAvatar(2, ServerId{2}, {50, 0});  // owned elsewhere
  auto attacker = f.entity(1);
  auto victim = f.entity(2);
  CommandBatch batch;
  batch.attack = AttackCommand{victim.id, {1, 0}};
  f.userInput(attacker, batch);
  EXPECT_DOUBLE_EQ(victim.health, 100.0);  // untouched locally
  ASSERT_EQ(f.sink.forwarded.size(), 1u);
  EXPECT_EQ(f.sink.forwarded[0].target, victim.id);
  EXPECT_EQ(f.sink.forwarded[0].source, attacker.id);
  const Interaction interaction = decodeInteraction(f.sink.forwarded[0].interaction);
  EXPECT_EQ(interaction.kind, Interaction::Kind::kAttack);
  EXPECT_DOUBLE_EQ(interaction.damage, 8.0);
}

TEST(FpsAppTest, ForwardedInteractionAppliesDamageAndRespawn) {
  AppFixture f;
  f.addAvatar(2, ServerId{1}, {50, 0}, 5.0);
  auto victim = f.entity(2);
  rtf::PhaseScope scope(f.meter, rtf::Phase::kFa);
  const auto payload = encodeInteraction({Interaction::Kind::kAttack, 8.0});
  f.app.applyForwardedInteraction(f.world, victim, EntityId{1}, payload, f.meter, f.sink);
  // 5 - 8 <= 0 -> respawned at full health.
  EXPECT_DOUBLE_EQ(victim.health, 100.0);
  EXPECT_GT(f.probes.phase(rtf::Phase::kFa), 0.0);
}

TEST(FpsAppTest, KillRespawnsAtFullHealthRandomPosition) {
  AppFixture f;
  f.addAvatar(1, ServerId{1}, {0, 0});
  f.addAvatar(2, ServerId{1}, {50, 0}, 4.0);
  auto attacker = f.entity(1);
  auto victim = f.entity(2);
  CommandBatch batch;
  batch.attack = AttackCommand{victim.id, {1, 0}};
  f.userInput(attacker, batch);
  EXPECT_DOUBLE_EQ(victim.health, 100.0);
}

TEST(FpsAppTest, AoiReturnsOnlyEntitiesWithinRadius) {
  AppFixture f;
  f.addAvatar(1, ServerId{1}, {500, 500});
  f.addAvatar(2, ServerId{1}, {500 + 100, 500});        // inside (100 < 220)
  f.addAvatar(3, ServerId{1}, {500, 500 + 219});        // inside
  f.addAvatar(4, ServerId{1}, {500 + 300, 500});        // outside
  f.addAvatar(5, ServerId{2}, {500 - 50, 500});         // shadow, inside
  auto viewer = f.entity(1);
  rtf::PhaseScope scope(f.meter, rtf::Phase::kAoi);
  std::vector<std::uint32_t> visible;
  f.app.computeAreaOfInterest(f.world, viewer, f.meter, visible);
  EXPECT_EQ(visible.size(), 3u);
  EXPECT_EQ(visible, (std::vector<std::uint32_t>{f.slot(2), f.slot(3), f.slot(5)}));
}

TEST(FpsAppTest, AoiExcludesViewerAndHasNoDuplicates) {
  AppFixture f;
  f.addAvatar(1, ServerId{1}, {500, 500});
  for (std::uint64_t id = 2; id < 30; ++id) f.addAvatar(id, ServerId{1}, {510, 510});
  auto viewer = f.entity(1);
  rtf::PhaseScope scope(f.meter, rtf::Phase::kAoi);
  std::vector<std::uint32_t> visible;
  f.app.computeAreaOfInterest(f.world, viewer, f.meter, visible);
  EXPECT_EQ(visible.size(), 28u);
  for (const std::uint32_t slot : visible) EXPECT_NE(EntityId{f.world.ids()[slot]}, viewer.id);
  std::set<std::uint32_t> unique(visible.begin(), visible.end());
  EXPECT_EQ(unique.size(), visible.size());
}

TEST(FpsAppTest, AoiCostGrowsSuperlinearly) {
  // The Euclidean Distance Algorithm with duplicate-check subscriptions must
  // produce superlinear per-user cost growth: doubling a dense population
  // more than doubles the AOI charge (paper: t_aoi quadratic).
  auto aoiCost = [](std::size_t population) {
    AppFixture f;
    f.addAvatar(1, ServerId{1}, {500, 500});
    for (std::uint64_t id = 2; id < 2 + population; ++id) {
      f.addAvatar(id, ServerId{1}, {505, 505});  // all visible -> max scans
    }
    auto viewer = f.entity(1);
    rtf::PhaseScope scope(f.meter, rtf::Phase::kAoi);
    std::vector<std::uint32_t> visible;
    f.app.computeAreaOfInterest(f.world, viewer, f.meter, visible);
    return f.probes.phase(rtf::Phase::kAoi);
  };
  const double c100 = aoiCost(100);
  const double c200 = aoiCost(200);
  EXPECT_GT(c200, 2.0 * c100 * 1.05);
}

TEST(FpsAppTest, AttackCostScansWholeWorld) {
  auto attackCost = [](std::size_t population) {
    AppFixture f;
    f.addAvatar(1, ServerId{1}, {0, 0});
    for (std::uint64_t id = 2; id < 2 + population; ++id) {
      f.addAvatar(id, ServerId{1}, {900, 900});
    }
    auto attacker = f.entity(1);
    CommandBatch batch;
    batch.attack = AttackCommand{EntityId{2}, {1, 0}};
    f.userInput(attacker, batch);
    return f.probes.phase(rtf::Phase::kUa);
  };
  // Cost grows linearly with world population per attack (paper's argument
  // for super-linear t_ua once attack frequency also grows with n).
  const double c50 = attackCost(50);
  const double c150 = attackCost(150);
  EXPECT_NEAR(c150 - c50, 100.0 * FpsConfig{}.attackScanPerEntityCost, 2.0);
}

TEST(FpsAppTest, BuildStateUpdateEncodesVisible) {
  AppFixture f;
  f.addAvatar(1, ServerId{1}, {500, 500});
  f.addAvatar(2, ServerId{1}, {510, 500});
  f.addAvatar(3, ServerId{1}, {520, 500});
  auto viewer = f.entity(1);
  const std::vector<std::uint32_t> visible{f.slot(2), f.slot(3)};
  rtf::PhaseScope scope(f.meter, rtf::Phase::kSu);
  std::vector<std::uint8_t> bytes;
  f.app.buildStateUpdate(f.world, viewer, visible, f.meter, bytes);
  const StateUpdatePayload payload = decodeStateUpdate(bytes);
  EXPECT_EQ(payload.self.id, viewer.id);
  ASSERT_EQ(payload.visible.size(), 2u);
  EXPECT_GT(f.probes.phase(rtf::Phase::kSu), 0.0);
}

TEST(FpsAppTest, BuildStateUpdateSlotGatherMatchesPerIdLookup) {
  // Regression for the slot-handle gather: the bytes must be exactly what a
  // per-id find()-based gather of the same entities would have produced.
  AppFixture f;
  f.addAvatar(1, ServerId{1}, {500, 500});
  f.addAvatar(2, ServerId{1}, {510.25, 500.5});
  f.addAvatar(3, ServerId{1}, {520, 499.75});
  f.addAvatar(4, ServerId{2}, {530, 501});
  auto viewer = f.entity(1);
  const std::vector<std::uint32_t> visible{f.slot(2), f.slot(3), f.slot(4)};
  rtf::PhaseScope scope(f.meter, rtf::Phase::kSu);
  std::vector<std::uint8_t> bytes;
  f.app.buildStateUpdate(f.world, viewer, visible, f.meter, bytes);

  StateUpdatePayload expected;
  expected.self = {viewer.id, static_cast<float>(viewer.position.x),
                   static_cast<float>(viewer.position.y), static_cast<float>(viewer.health)};
  for (const std::uint64_t id : {2u, 3u, 4u}) {
    const auto e = std::as_const(f.world).find(EntityId{id});
    ASSERT_TRUE(e.has_value());
    expected.visible.push_back({e->id, static_cast<float>(e->position.x),
                                static_cast<float>(e->position.y),
                                static_cast<float>(e->health)});
  }
  EXPECT_EQ(bytes, encodedStateUpdate(expected));
}

TEST(FpsAppTest, NpcWandersAndCharges) {
  AppFixture f;
  rtf::EntityRecord npc;
  npc.id = EntityId{100};
  npc.kind = rtf::EntityKind::kNpc;
  npc.owner = ServerId{1};
  npc.position = {500, 500};
  auto stored = f.world.upsert(npc);
  rtf::PhaseScope scope(f.meter, rtf::Phase::kNpc);
  for (int i = 0; i < 100; ++i) f.app.updateNpc(f.world, stored, f.meter, f.rng);
  EXPECT_GT(f.probes.phase(rtf::Phase::kNpc), 0.0);
  EXPECT_NE(stored.position, Vec2(500, 500));
}

TEST(FpsAppTest, ShadowUpdateCostGrowsWithPopulation) {
  auto shadowCost = [](std::size_t population) {
    AppFixture f;
    for (std::uint64_t id = 1; id <= population; ++id) {
      f.addAvatar(id, ServerId{1}, {500, 500});
    }
    f.addAvatar(9999, ServerId{2}, {100, 100});
    auto shadow = f.entity(9999);
    rtf::PhaseScope scope(f.meter, rtf::Phase::kFa);
    f.app.onShadowUpdated(f.world, shadow, f.meter);
    return f.probes.phase(rtf::Phase::kFa);
  };
  EXPECT_GT(shadowCost(300), shadowCost(50));
}

// ---------- bots ----------

TEST(BotTest, AlwaysMoves) {
  BotProvider bot;
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const auto bytes = bot.nextCommands(SimTime{0}, rng);
    const CommandBatch batch = decodeCommands(bytes);
    ASSERT_TRUE(batch.move.has_value());
    EXPECT_NEAR(batch.move->direction.length(), 1.0, 1e-6);
  }
  EXPECT_EQ(bot.commandsIssued(), 50u);
}

TEST(BotTest, NeverAttacksWithoutVisibleTargets) {
  BotProvider bot;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const CommandBatch batch = decodeCommands(bot.nextCommands(SimTime{0}, rng));
    EXPECT_FALSE(batch.attack.has_value());
  }
  EXPECT_EQ(bot.attacksIssued(), 0u);
}

TEST(BotTest, AttackRateGrowsWithVisiblePopulation) {
  auto attackRate = [](std::size_t visible) {
    BotProvider bot;
    Rng rng(5);
    StateUpdatePayload payload;
    payload.self = {EntityId{1}, 0, 0, 100};
    for (std::uint64_t id = 2; id < 2 + visible; ++id) {
      payload.visible.push_back({EntityId{id}, 0, 0, 100});
    }
    bot.onStateUpdate(encodedStateUpdate(payload));
    int attacks = 0;
    const int trials = 4000;
    for (int i = 0; i < trials; ++i) {
      if (decodeCommands(bot.nextCommands(SimTime{0}, rng)).attack) ++attacks;
    }
    return static_cast<double>(attacks) / trials;
  };
  const double r5 = attackRate(5);
  const double r40 = attackRate(40);
  // Defaults: p = 0.08 + 0.01 * visible.
  EXPECT_NEAR(r5, 0.13, 0.02);
  EXPECT_NEAR(r40, 0.48, 0.03);
  EXPECT_GT(r40, r5 * 2.0);
}

TEST(BotTest, AttackTargetsComeFromLastUpdate) {
  BotProvider bot(BotConfig{0.1, 1.0, 0.0, 1.0});  // always attack
  Rng rng(9);
  StateUpdatePayload payload;
  payload.self = {EntityId{1}, 0, 0, 100};
  payload.visible.push_back({EntityId{77}, 0, 0, 100});
  bot.onStateUpdate(encodedStateUpdate(payload));
  const CommandBatch batch = decodeCommands(bot.nextCommands(SimTime{0}, rng));
  ASSERT_TRUE(batch.attack.has_value());
  EXPECT_EQ(batch.attack->target, EntityId{77});
  EXPECT_EQ(bot.lastVisibleCount(), 1u);
}

// ---------- scenarios ----------

TEST(ScenarioTest, PiecewiseLinearInterpolation) {
  WorkloadScenario s;
  s.then(SimDuration::seconds(10), 100).then(SimDuration::seconds(10), 100)
      .then(SimDuration::seconds(10), 0);
  EXPECT_EQ(s.targetAt(SimTime::zero()), 0u);
  EXPECT_EQ(s.targetAt(SimTime{5000000}), 50u);
  EXPECT_EQ(s.targetAt(SimTime{10000000}), 100u);
  EXPECT_EQ(s.targetAt(SimTime{15000000}), 100u);
  EXPECT_EQ(s.targetAt(SimTime{25000000}), 50u);
  EXPECT_EQ(s.targetAt(SimTime{30000000}), 0u);
  EXPECT_EQ(s.targetAt(SimTime{99000000}), 0u);  // holds last value
  EXPECT_EQ(s.totalDuration().micros, 30000000);
}

TEST(ScenarioTest, EmptyScenarioIsZero) {
  WorkloadScenario s;
  EXPECT_EQ(s.targetAt(SimTime{123}), 0u);
  EXPECT_EQ(s.totalDuration(), SimDuration::zero());
}

TEST(ScenarioTest, FactoryShapes) {
  const WorkloadScenario paper = WorkloadScenario::paperSession(300);
  EXPECT_EQ(paper.targetAt(SimTime{60000000}), 300u);  // after ramp-up
  EXPECT_EQ(paper.targetAt(SimTime::zero() + paper.totalDuration()), 0u);
  const WorkloadScenario flat = WorkloadScenario::constant(42, SimDuration::seconds(5));
  EXPECT_EQ(flat.targetAt(SimTime{1}), 42u);
  EXPECT_EQ(flat.targetAt(SimTime{4999999}), 42u);
}

TEST(ChurnDriverTest, TracksTarget) {
  FpsApplication app;
  rtf::Cluster cluster(app, rtf::ClusterConfig{});
  const ZoneId zone = cluster.createZone("arena");
  cluster.addServer(zone);
  WorkloadScenario scenario;
  scenario.then(SimDuration::seconds(4), 40).then(SimDuration::seconds(4), 10);
  game::ChurnDriver driver(cluster, zone, scenario);
  driver.start();
  cluster.run(SimDuration::seconds(4));
  EXPECT_NEAR(static_cast<double>(cluster.clientCount()), 40.0, 4.0);
  cluster.run(SimDuration::seconds(5));
  EXPECT_NEAR(static_cast<double>(cluster.clientCount()), 10.0, 4.0);
  EXPECT_GT(driver.totalJoins(), driver.totalLeaves());
  driver.stop();
}

TEST(ChurnDriverTest, RateLimitBoundsStepSize) {
  FpsApplication app;
  rtf::Cluster cluster(app, rtf::ClusterConfig{});
  const ZoneId zone = cluster.createZone("arena");
  cluster.addServer(zone);
  game::ChurnDriver::Config config;
  config.maxChangePerPeriod = 2;
  config.period = SimDuration::seconds(1);
  game::ChurnDriver driver(cluster, zone, WorkloadScenario::constant(100, SimDuration::seconds(30)),
                           config);
  driver.start();
  cluster.run(SimDuration::milliseconds(3500));
  // Three periods at <= 2 joins each.
  EXPECT_LE(cluster.clientCount(), 6u);
  EXPECT_GE(cluster.clientCount(), 4u);
  driver.stop();
}

}  // namespace
}  // namespace roia::game
