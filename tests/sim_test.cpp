// Tests for the discrete-event kernel: ordering, FIFO tie-breaks,
// cancellation, periodic processes, and the CPU cost model / accounting.
#include <gtest/gtest.h>

#include <vector>

#include "sim/cpu.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulation.hpp"

namespace roia::sim {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(SimTime{30}, [&] { fired.push_back(3); });
  q.schedule(SimTime{10}, [&] { fired.push_back(1); });
  q.schedule(SimTime{20}, [&] { fired.push_back(2); });
  SimTime at;
  while (!q.empty()) q.pop(at)();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoTieBreakAtSameTime) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(SimTime{100}, [&fired, i] { fired.push_back(i); });
  }
  SimTime at;
  while (!q.empty()) q.pop(at)();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const EventHandle h = q.schedule(SimTime{5}, [&] { fired = true; });
  q.schedule(SimTime{6}, [] {});
  q.cancel(h);
  EXPECT_EQ(q.size(), 1u);
  SimTime at;
  q.pop(at)();
  EXPECT_FALSE(fired);
  EXPECT_EQ(at, SimTime{6});
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelStaleHandleIsSafe) {
  EventQueue q;
  const EventHandle h = q.schedule(SimTime{1}, [] {});
  SimTime at;
  q.pop(at)();
  q.cancel(h);          // already fired
  q.cancel(EventHandle{});  // never valid
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventHandle h = q.schedule(SimTime{1}, [] {});
  q.schedule(SimTime{9}, [] {});
  q.cancel(h);
  EXPECT_EQ(q.nextTime(), SimTime{9});
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, EmptyNextTimeIsMax) {
  EventQueue q;
  EXPECT_EQ(q.nextTime(), SimTime::max());
}

TEST(SimulationTest, ClockAdvancesWithEvents) {
  Simulation sim;
  std::vector<std::int64_t> times;
  sim.scheduleAt(SimTime{100}, [&] { times.push_back(sim.now().micros); });
  sim.scheduleAfter(SimDuration::microseconds(50), [&] { times.push_back(sim.now().micros); });
  sim.runAll();
  EXPECT_EQ(times, (std::vector<std::int64_t>{50, 100}));
  EXPECT_EQ(sim.executedEvents(), 2u);
}

TEST(SimulationTest, PastSchedulingClampsToNow) {
  Simulation sim;
  sim.scheduleAt(SimTime{100}, [] {});
  sim.runAll();
  bool fired = false;
  sim.scheduleAt(SimTime{10}, [&] { fired = true; });  // in the past
  sim.runAll();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), SimTime{100});
}

TEST(SimulationTest, RunUntilStopsAndAdvancesClock) {
  Simulation sim;
  int fired = 0;
  sim.scheduleAt(SimTime{10}, [&] { ++fired; });
  sim.scheduleAt(SimTime{20}, [&] { ++fired; });
  sim.scheduleAt(SimTime{30}, [&] { ++fired; });
  sim.runUntil(SimTime{20});
  EXPECT_EQ(fired, 2);        // events at exactly `until` run
  EXPECT_EQ(sim.now(), SimTime{20});
  sim.runUntil(SimTime{25});  // no events, clock still advances
  EXPECT_EQ(sim.now(), SimTime{25});
}

TEST(SimulationTest, EventsCanScheduleEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.scheduleAfter(SimDuration::microseconds(10), recurse);
  };
  sim.scheduleAt(SimTime{0}, recurse);
  sim.runAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), SimTime{40});
}

TEST(SimulationTest, PeriodicFiresUntilStopped) {
  Simulation sim;
  int count = 0;
  sim.schedulePeriodic(SimDuration::milliseconds(10), [&](SimTime) { return ++count < 3; });
  sim.runUntil(SimTime{SimDuration::milliseconds(100).micros});
  EXPECT_EQ(count, 3);
}

TEST(SimulationTest, PeriodicCancelToken) {
  Simulation sim;
  int count = 0;
  auto token = sim.schedulePeriodic(SimDuration::milliseconds(10), [&](SimTime) {
    ++count;
    return true;
  });
  sim.runUntil(SimTime{SimDuration::milliseconds(35).micros});
  EXPECT_EQ(count, 3);
  Simulation::cancelPeriodic(token);
  sim.runUntil(SimTime{SimDuration::milliseconds(200).micros});
  EXPECT_EQ(count, 3);
}

TEST(CpuCostModelTest, ExactChargeWithoutNoise) {
  CpuCostModel cpu;
  EXPECT_EQ(cpu.charge(100.0).micros, 100);
  EXPECT_EQ(cpu.charge(0.4).micros, 0);  // rounds
  EXPECT_EQ(cpu.charge(0.6).micros, 1);
}

TEST(CpuCostModelTest, SpeedFactorScales) {
  CpuCostModel::Config config;
  config.speedFactor = 2.0;
  CpuCostModel fast(config);
  EXPECT_EQ(fast.charge(100.0).micros, 50);
  EXPECT_EQ(fast.chargeExact(100.0).micros, 50);
}

TEST(CpuCostModelTest, NoiseIsDeterministicPerSeed) {
  CpuCostModel::Config config;
  config.noiseAmplitude = 0.1;
  config.noiseSeed = 7;
  CpuCostModel a(config), b(config);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.charge(1000.0).micros, b.charge(1000.0).micros);
  }
}

TEST(CpuCostModelTest, NoiseAveragesToUnity) {
  CpuCostModel::Config config;
  config.noiseAmplitude = 0.1;
  config.noiseSeed = 3;
  CpuCostModel cpu(config);
  double sum = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) sum += static_cast<double>(cpu.charge(1000.0).micros);
  EXPECT_NEAR(sum / trials, 1000.0, 5.0);
}

TEST(CpuCostModelTest, NeverNegative) {
  CpuCostModel::Config config;
  config.noiseAmplitude = 3.0;  // extreme
  CpuCostModel cpu(config);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(cpu.charge(5.0).micros, 0);
  }
}

TEST(CpuAccountTest, LoadReflectsBusyFraction) {
  CpuAccount acc(SimDuration::seconds(10));
  // 50% busy: 20 ms busy within a 40 ms interval.
  for (int i = 0; i < 10; ++i) {
    acc.recordTick(SimTime{i * 40000}, SimDuration::milliseconds(20),
                   SimDuration::milliseconds(40));
  }
  EXPECT_NEAR(acc.load(), 0.5, 1e-9);
  EXPECT_EQ(acc.ticks(), 10u);
  EXPECT_EQ(acc.totalBusy().micros, 200000);
}

TEST(CpuAccountTest, OverloadClampsToOne) {
  CpuAccount acc(SimDuration::seconds(10));
  acc.recordTick(SimTime{0}, SimDuration::milliseconds(80), SimDuration::milliseconds(40));
  EXPECT_DOUBLE_EQ(acc.load(), 1.0);
}

TEST(CpuAccountTest, WindowForgetsOldLoad) {
  CpuAccount acc(SimDuration::seconds(1));
  acc.recordTick(SimTime{0}, SimDuration::milliseconds(40), SimDuration::milliseconds(40));
  acc.recordTick(SimTime{5000000}, SimDuration::milliseconds(4), SimDuration::milliseconds(40));
  EXPECT_NEAR(acc.load(), 0.1, 1e-9);
}

}  // namespace
}  // namespace roia::sim
