// Coverage for the remaining small components: the zone directory, the
// logger, and client-endpoint lifecycle edge cases.
#include <gtest/gtest.h>

#include <memory>

#include "common/log.hpp"
#include "game/bots.hpp"
#include "game/fps_app.hpp"
#include "rtf/cluster.hpp"
#include "rtf/zone.hpp"

namespace roia {
namespace {

// ---------- zone directory ----------

TEST(ZoneDirectoryTest, ZonesAndReplicas) {
  rtf::ZoneDirectory directory;
  rtf::ZoneDescriptor zone;
  zone.id = ZoneId{1};
  zone.name = "plains";
  zone.origin = {0, 0};
  zone.extent = {100, 50};
  directory.addZone(zone);

  EXPECT_TRUE(directory.hasZone(ZoneId{1}));
  EXPECT_FALSE(directory.hasZone(ZoneId{2}));
  EXPECT_EQ(directory.zone(ZoneId{1}).name, "plains");

  directory.addReplica(ZoneId{1}, ServerId{10});
  directory.addReplica(ZoneId{1}, ServerId{11});
  EXPECT_EQ(directory.replicaCount(ZoneId{1}), 2u);
  EXPECT_EQ(directory.replicas(ZoneId{1}),
            (std::vector<ServerId>{ServerId{10}, ServerId{11}}));

  directory.removeReplica(ZoneId{1}, ServerId{10});
  EXPECT_EQ(directory.replicas(ZoneId{1}), (std::vector<ServerId>{ServerId{11}}));
  directory.removeReplica(ZoneId{9}, ServerId{1});  // unknown zone: no-op
  EXPECT_EQ(directory.replicaCount(ZoneId{9}), 0u);
  EXPECT_TRUE(directory.replicas(ZoneId{9}).empty());
}

TEST(ZoneDirectoryTest, ContainsUsesHalfOpenBounds) {
  rtf::ZoneDescriptor zone;
  zone.origin = {10, 10};
  zone.extent = {90, 40};
  EXPECT_TRUE(zone.contains({10, 10}));     // inclusive lower edge
  EXPECT_TRUE(zone.contains({99.9, 49.9}));
  EXPECT_FALSE(zone.contains({100, 30}));   // exclusive upper edge
  EXPECT_FALSE(zone.contains({50, 50}));
  EXPECT_FALSE(zone.contains({9.9, 30}));
}

TEST(ZoneDirectoryTest, ZoneIdsListsEverything) {
  rtf::ZoneDirectory directory;
  for (std::uint64_t id : {3u, 1u, 2u}) {
    rtf::ZoneDescriptor zone;
    zone.id = ZoneId{id};
    directory.addZone(zone);
  }
  auto ids = directory.zoneIds();
  EXPECT_EQ(ids.size(), 3u);
}

// ---------- logger ----------

TEST(LoggerTest, LevelGating) {
  const LogLevel original = Logger::level();
  Logger::setLevel(LogLevel::kWarn);
  EXPECT_FALSE(Logger::enabled(LogLevel::kDebug));
  EXPECT_FALSE(Logger::enabled(LogLevel::kInfo));
  EXPECT_TRUE(Logger::enabled(LogLevel::kWarn));
  EXPECT_TRUE(Logger::enabled(LogLevel::kError));
  Logger::setLevel(LogLevel::kOff);
  EXPECT_FALSE(Logger::enabled(LogLevel::kError));
  Logger::setLevel(original);
}

TEST(LoggerTest, MacroOnlyEvaluatesWhenEnabled) {
  const LogLevel original = Logger::level();
  Logger::setLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return 42;
  };
  ROIA_LOG(LogLevel::kDebug, "test", "value " << expensive());
  EXPECT_EQ(evaluations, 0);
  Logger::setLevel(original);
}

// ---------- client endpoint lifecycle ----------

TEST(ClientEndpointTest, StopIsIdempotentAndFinal) {
  game::FpsApplication app;
  rtf::Cluster cluster(app, rtf::ClusterConfig{});
  const ZoneId zone = cluster.createZone("arena");
  cluster.addServer(zone);
  const ClientId c = cluster.connectClient(zone, std::make_unique<game::BotProvider>());
  cluster.run(SimDuration::seconds(1));
  const std::uint64_t updates = cluster.client(c).updatesReceived();
  EXPECT_GT(updates, 0u);

  cluster.client(c).stop();
  cluster.client(c).stop();  // idempotent
  cluster.run(SimDuration::seconds(1));
  // No further inputs sent nor updates received after stop.
  EXPECT_EQ(cluster.client(c).updatesReceived(), updates);
  EXPECT_FALSE(cluster.client(c).active());
}

TEST(ClientEndpointTest, ReconnectTargetsNewServerNode) {
  game::FpsApplication app;
  rtf::Cluster cluster(app, rtf::ClusterConfig{});
  const ZoneId zone = cluster.createZone("arena");
  const ServerId a = cluster.addServer(zone);
  const ServerId b = cluster.addServer(zone);
  const ClientId c = cluster.connectClientTo(a, std::make_unique<game::BotProvider>());
  EXPECT_EQ(cluster.client(c).server(), a);
  cluster.migrateClient(c, b);
  cluster.run(SimDuration::seconds(1));
  EXPECT_EQ(cluster.client(c).server(), b);
  EXPECT_EQ(cluster.client(c).avatar(), cluster.client(c).avatar());
}

TEST(ClientEndpointTest, InputsArriveAtConfiguredRate) {
  game::FpsApplication app;
  rtf::Cluster cluster(app, rtf::ClusterConfig{});
  const ZoneId zone = cluster.createZone("arena");
  const ServerId s = cluster.addServer(zone);
  cluster.connectClientTo(s, std::make_unique<game::BotProvider>());
  cluster.run(SimDuration::seconds(2));
  // 25 Hz input rate: roughly 50 batches applied in 2 s.
  const rtf::MonitoringSnapshot snapshot = cluster.server(s).monitoring();
  EXPECT_GT(snapshot.ticksObserved, 45u);
}

}  // namespace
}  // namespace roia
