#!/usr/bin/env python3
"""roia-lint: project-invariant static analysis for the ROIA codebase.

The repo's correctness story rests on source-level conventions that a
compiler cannot check: deterministic simulation (seeded RNG only, no wall
clock), stable iteration order anywhere bytes/RNG/telemetry are produced,
encode/decode symmetry for every wire message, and allocation-free hot
paths. This tool turns those conventions into named, machine-checkable
rules over the C++ sources. Stdlib Python only; token/AST-lite (comments
and string literals are masked before scanning, so commented-out code
never fires a rule).

Rules (see --list-rules):

  determinism            bans wall-clock and unseeded randomness in the
                         deterministic core (src/{sim,rtf,rms,model,game,
                         serialize}); src/obs and bench timing are exempt.
  ordered-iteration      flags range-for over std::unordered_map/set in
                         files that feed serialization, RNG draws, or
                         telemetry output — iteration order there leaks
                         into bytes/results and breaks the byte-identical
                         sweep contract.
  serialization-coverage parses every *Msg struct in rtf/messages.hpp and
                         verifies each field is touched by both its encode
                         and decode path in messages.cpp; also parses
                         EntitySnapshot (rtf/entity.hpp) and verifies every
                         field has a SnapshotField row in the kSnapshotSchema
                         wire table of snapshot_codec.cpp.
  hot-path-alloc         flags new / std::string / std::vector
                         construction inside functions annotated
                         `// roia-hot`.
  bounded-retry          flags retry/retransmit/poll loops in the
                         deterministic core with no structural exit
                         (while(true), for(;;), negated-flag spins) and no
                         attempt cap, deadline, or budget in sight — an
                         unreachable peer must not spin forever.
  audit-vocabulary       audit `action` names must come from the
                         marker-tagged registry header (the file whose
                         first lines contain `roia-audit-event-registry`,
                         canonically src/obs/events.hpp); flags string
                         literals assigned to an `.action` field or passed
                         as the first argument of an audit*() call that
                         are not registered there.
  bad-suppression        a `roia-lint: allow(...)` without a justification
                         (`-- <reason>`) or naming an unknown rule.

Whole-program rules (v2, built on the call-graph index in cpp_index.py —
every file under the scanned tree is brace-parsed into functions, calls and
per-function facts, and the rules below propagate those facts across
function and TU boundaries):

  transitive-hot-alloc   propagates `// roia-hot` through the call graph:
                         an allocation in any reachable non-hot callee is
                         flagged with the full hot-root -> callee chain.
                         Replaces the annotate-every-leaf honor system.
  determinism-taint      dataflow from nondeterminism sources (unseeded
                         RNG, wall clocks, unordered iteration order,
                         pointer-keyed ordered containers) in the
                         deterministic core to observable sinks (wire
                         writes, metrics/audit/trace emission, FP
                         accumulators), reported with the source -> sink
                         call chain.
  wire-schema-drift      every *Msg struct and kSnapshotSchema row is
                         checked against the golden manifest
                         tools/lint/wire_manifest.json (field name,
                         declared type, wire order); any drift without a
                         manifest regeneration (--write-manifest) in the
                         same diff fails the lint.
  suppression-debt       inventories every well-formed allow() with rule,
                         reason and git age; an allow that no longer
                         suppresses any finding is stale and fails. The
                         full debt table rides in the JSON output for the
                         health report.

Suppressions: append `// roia-lint: allow(<rule>) -- <reason>` to the
offending line, or place it on the line directly above. The reason is
mandatory; a bare allow() is itself a finding.

Exit codes: 0 clean, 1 findings, 2 usage/internal error.

Typical invocations:

    python3 tools/lint/roia_lint.py src/
    python3 tools/lint/roia_lint.py --format json src/ | python3 -m json.tool
    python3 tools/lint/roia_lint.py --format sarif src/ > lint.sarif
    python3 tools/lint/roia_lint.py --changed-only src/
    python3 tools/lint/roia_lint.py --write-manifest src/
    python3 tools/lint/roia_lint.py --list-rules
"""

import argparse
import collections
import json
import os
import re
import subprocess
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import cpp_index  # noqa: E402  (sibling module, stdlib-only)

# Subsystems whose behaviour must be bit-reproducible from a seed. src/obs
# (telemetry sidecars may stamp wall-clock metadata) and the bench harnesses
# (wall-clock timing is their purpose) are deliberately outside this set.
CORE_DIRS = {"sim", "rtf", "rms", "model", "game", "serialize"}

CPP_EXTENSIONS = (".cpp", ".hpp", ".h", ".cc", ".hh")

RULES = {
    "determinism": (
        "rand()/srand(), std::random_device, std::chrono::system_clock, "
        "time(), and unseeded std::mt19937 are banned in the deterministic "
        "core — all randomness must flow through the seeded roia::Rng and "
        "all time through SimTime"
    ),
    "ordered-iteration": (
        "range-for over std::unordered_map/std::unordered_set in a file "
        "that feeds serialization, RNG draws, or telemetry output — "
        "unordered iteration order leaks into bytes/results"
    ),
    "serialization-coverage": (
        "every field of every *Msg struct in rtf/messages.hpp must appear "
        "in both its encode() and decode*() body in messages.cpp, and every "
        "EntitySnapshot field must have a SnapshotField::k<Name> row in the "
        "kSnapshotSchema wire table of snapshot_codec.cpp"
    ),
    "hot-path-alloc": (
        "no new / std::string / std::to_string / std::vector construction "
        "inside a function annotated // roia-hot"
    ),
    "bounded-retry": (
        "retry/retransmit/poll loops in the deterministic core with no "
        "structural exit (while(true), for(;;), negated-flag spins) must "
        "carry an attempt cap, deadline, or budget — unreachable peers "
        "must not spin forever"
    ),
    "audit-vocabulary": (
        "audit event (action) names must come from the registry header "
        "tagged `roia-audit-event-registry` (src/obs/events.hpp) — a "
        "free-form literal assigned to `.action` or passed first to an "
        "audit*() call breaks the closed, greppable audit vocabulary"
    ),
    "bad-suppression": (
        "roia-lint: allow(...) must name a known rule and carry a "
        "justification: // roia-lint: allow(<rule>) -- <reason>"
    ),
    "transitive-hot-alloc": (
        "no allocation in any function reachable from a // roia-hot root "
        "through the whole-program call graph — the hot annotation "
        "propagates to callees, so a helper two calls deep cannot hide "
        "an allocation the line-local hot-path-alloc rule would miss"
    ),
    "determinism-taint": (
        "no dataflow from a nondeterminism source (unseeded RNG, wall "
        "clock, unordered iteration, pointer-keyed ordering) in the "
        "deterministic core to an observable sink (wire bytes, metrics/"
        "audit/trace emission, FP accumulators); reported with the "
        "source -> sink call chain"
    ),
    "wire-schema-drift": (
        "*Msg struct fields and kSnapshotSchema rows (name, declared "
        "type, wire order) must match tools/lint/wire_manifest.json; "
        "intentional protocol changes regenerate it in the same diff "
        "via --write-manifest"
    ),
    "suppression-debt": (
        "every roia-lint: allow(...) must still suppress a live finding; "
        "a stale allow (the underlying line no longer trips the rule) is "
        "debt and must be deleted"
    ),
}

ALLOW_RE = re.compile(r"//\s*roia-lint:\s*allow\(([^)]*)\)(?:\s*--\s*(\S.*))?")
HOT_RE = re.compile(r"//\s*roia-hot\b")


class Finding:
    __slots__ = ("file", "line", "rule", "message")

    def __init__(self, file, line, rule, message):
        self.file = file
        self.line = line
        self.rule = rule
        self.message = message

    def as_dict(self):
        return {"file": self.file, "line": self.line, "rule": self.rule,
                "message": self.message}


def mask_source(text):
    """Replaces comments and string/char literals with spaces.

    Newlines are preserved so offsets and line numbers survive. Handles //,
    /* */, "...", '...' with escapes, and basic raw strings R"delim(...)delim".
    """
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            end = text.find("\n", i)
            end = n if end == -1 else end
            out.append(" " * (end - i))
            i = end
        elif c == "/" and nxt == "*":
            end = text.find("*/", i + 2)
            end = n if end == -1 else end + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:end]))
            i = end
        elif c == "R" and nxt == '"':
            close = text.find("(", i + 2)
            if close == -1:
                out.append(c)
                i += 1
                continue
            delim = text[i + 2:close]
            terminator = ")" + delim + '"'
            end = text.find(terminator, close + 1)
            end = n if end == -1 else end + len(terminator)
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:end]))
            i = end
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(" " * (j - i))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def mask_comments(text):
    """Replaces comments with spaces but keeps string literals intact.

    The audit-vocabulary rule needs to *read* string literals (they are the
    findings), yet commented-out emissions must stay inert — so this is the
    comment-only counterpart of mask_source(). Newlines are preserved.
    """
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            end = text.find("\n", i)
            end = n if end == -1 else end
            out.append(" " * (end - i))
            i = end
        elif c == "/" and nxt == "*":
            end = text.find("*/", i + 2)
            end = n if end == -1 else end + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:end]))
            i = end
        elif c == "R" and nxt == '"':
            close = text.find("(", i + 2)
            if close == -1:
                out.append(c)
                i += 1
                continue
            delim = text[i + 2:close]
            terminator = ")" + delim + '"'
            end = text.find(terminator, close + 1)
            end = n if end == -1 else end + len(terminator)
            out.append(text[i:end])
            i = end
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(text[i:j])
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def match_bracket(text, open_pos, open_ch, close_ch):
    """Offset just past the bracket closing text[open_pos]; -1 if unbalanced."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def collect_suppressions(raw_lines):
    """line -> (set of allowed rules, reason or None, raw allow() text)."""
    allows = {}
    for idx, line in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            allows[idx] = (rules, m.group(2), m.group(0))
    return allows


def suppression_findings(path, allows):
    findings = []
    for idx, (rules, reason, text) in sorted(allows.items()):
        unknown = rules - set(RULES)
        if unknown:
            findings.append(Finding(
                path, idx, "bad-suppression",
                f"allow() names unknown rule(s) {sorted(unknown)}"))
        if reason is None:
            findings.append(Finding(
                path, idx, "bad-suppression",
                "allow() without a justification; write "
                "`// roia-lint: allow(<rule>) -- <reason>`"))
    return findings


def is_suppressed(finding, allows):
    if finding.rule in ("bad-suppression", "suppression-debt"):
        return False  # a broken/stale suppression cannot suppress itself
    for line in (finding.line, finding.line - 1):
        entry = allows.get(line)
        if entry and finding.rule in entry[0] and entry[1]:
            return True
    return False


# ---------------------------------------------------------------------------
# determinism

DETERMINISM_PATTERNS = [
    (re.compile(r"(?<![\w:])s?rand\s*\("),
     "rand()/srand(): use the seeded roia::Rng instead"),
    (re.compile(r"\brandom_device\b"),
     "std::random_device is nondeterministic; seed a roia::Rng"),
    (re.compile(r"\bsystem_clock\b"),
     "wall clock in the deterministic core; use SimTime"),
    (re.compile(r"(?<![\w.>:])(?:std\s*::\s*)?time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "time() reads the wall clock; use SimTime"),
]

MT19937_UNSEEDED_RE = re.compile(
    r"\bmt19937(?:_64)?\s+\w+\s*(?:;|\(\s*\)|\{\s*\})|\bmt19937(?:_64)?\s*(?:\(\s*\)|\{\s*\})")
MT19937_ANY_RE = re.compile(r"\bmt19937(?:_64)?\b")


def rule_determinism(path, masked, in_core):
    if not in_core:
        return []
    findings = []
    for pattern, message in DETERMINISM_PATTERNS:
        for m in pattern.finditer(masked):
            findings.append(Finding(path, line_of(masked, m.start()),
                                    "determinism", message))
    for m in MT19937_UNSEEDED_RE.finditer(masked):
        findings.append(Finding(
            path, line_of(masked, m.start()), "determinism",
            "unseeded std::mt19937; use roia::Rng (or at minimum a "
            "fixed-seed construction)"))
    return findings


# ---------------------------------------------------------------------------
# ordered-iteration

UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set)\s*<")
# Signals that a file's results end up in bytes, RNG-dependent state, or
# telemetry — the contexts where iteration order becomes observable.
OUTPUT_FEED_RE = re.compile(
    r"\bRng\b|\brng_?\b|ser::|ByteWriter|encode\s*\(|Metrics|AuditLog|"
    r"Tracer|telemetry|printf|std::cout|writeVar")


def unordered_container_names(masked):
    """Identifiers declared with std::unordered_map/std::unordered_set type."""
    names = set()
    for m in UNORDERED_DECL_RE.finditer(masked):
        open_angle = masked.find("<", m.start())
        # Angle-bracket matching ignoring shifts: template args here never
        # contain expressions, so <...> counting is exact in practice.
        end = match_bracket(masked, open_angle, "<", ">")
        if end == -1:
            continue
        tail = masked[end:end + 200]
        decl = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*[;{=,)]", tail)
        if decl:
            names.add(decl.group(1))
    return names


def range_for_loops(masked):
    """Yields (line, range_expression) for every range-based for."""
    for m in re.finditer(r"\bfor\s*\(", masked):
        open_paren = masked.find("(", m.start())
        end = match_bracket(masked, open_paren, "(", ")")
        if end == -1:
            continue
        inner = masked[open_paren + 1:end - 1]
        # Find a top-level ':' that is not part of '::'.
        depth = 0
        for i, ch in enumerate(inner):
            if ch in "(<[{":
                depth += 1
            elif ch in ")>]}":
                depth -= 1
            elif ch == ":" and depth == 0:
                if (i > 0 and inner[i - 1] == ":") or inner[i + 1:i + 2] == ":":
                    continue
                yield line_of(masked, open_paren), inner[i + 1:].strip()
                break


def rule_ordered_iteration(path, masked, paired_masked, in_scope):
    if not in_scope:
        return []
    names = unordered_container_names(masked)
    for other in paired_masked:
        names |= unordered_container_names(other)
    if not names:
        return []
    findings = []
    for line, expr in range_for_loops(masked):
        terminal = re.search(r"([A-Za-z_]\w*)\s*$", expr)
        if terminal and terminal.group(1) in names:
            findings.append(Finding(
                path, line, "ordered-iteration",
                f"range-for over unordered container '{terminal.group(1)}' "
                "in an output-feeding file; iterate a sorted view or use an "
                "ordered container"))
    return findings


# ---------------------------------------------------------------------------
# serialization-coverage

STRUCT_RE = re.compile(r"\bstruct\s+(\w+Msg)\s*\{")


def struct_data_members(masked, open_brace, end):
    """list of (field_name, line, declared_type): depth-1 struct members."""
    fields = []
    depth = 0
    stmt = []
    stmt_start = open_brace + 1
    for i in range(open_brace + 1, end - 1):
        ch = masked[i]
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
        elif depth == 0:
            if ch == ";":
                text = "".join(stmt)
                # Data members carry no parentheses once initializers
                # (brace form) are stripped; anything with '(' is a
                # function/constructor declaration.
                if "(" not in text:
                    # Drop '= default-value' initializers, keep the name.
                    text = text.split("=")[0].strip()
                    name = re.search(r"([A-Za-z_]\w*)\s*$", text)
                    if name and not text.startswith(("using", "static")):
                        ftype = re.sub(r"\s+", " ", text[:name.start()].strip())
                        fields.append((name.group(1),
                                       line_of(masked, stmt_start), ftype))
                stmt = []
                stmt_start = i + 1
            else:
                stmt.append(ch)
                if ch == "\n" and not "".join(stmt).strip():
                    stmt_start = i + 1
    return fields


def parse_message_structs(masked):
    """name -> list of (field, line, type). Depth-1 data members only."""
    structs = {}
    for m in STRUCT_RE.finditer(masked):
        open_brace = masked.find("{", m.start())
        end = match_bracket(masked, open_brace, "{", "}")
        if end == -1:
            continue
        structs[m.group(1)] = struct_data_members(masked, open_brace, end)
    return structs


def parse_message_struct_lines(masked):
    """name -> line of the `struct <Name>Msg {` declaration itself."""
    return {m.group(1): line_of(masked, m.start())
            for m in STRUCT_RE.finditer(masked)}


def parse_struct_fields(masked, struct_name):
    """Depth-1 data members of one named struct: list of (name, line, type)."""
    m = re.search(r"\bstruct\s+" + re.escape(struct_name) + r"\s*\{", masked)
    if not m:
        return []
    open_brace = masked.find("{", m.start())
    end = match_bracket(masked, open_brace, "{", "}")
    if end == -1:
        return []
    return struct_data_members(masked, open_brace, end)


def function_body(masked, header_re):
    """Body text of the first function whose header matches header_re."""
    m = header_re.search(masked)
    if not m:
        return None
    open_brace = masked.find("{", m.end())
    if open_brace == -1:
        return None
    end = match_bracket(masked, open_brace, "{", "}")
    if end == -1:
        return None
    return masked[m.start():end]


def rule_serialization_coverage(hpp_path, hpp_masked, cpp_path, cpp_masked):
    findings = []
    structs = parse_message_structs(hpp_masked)
    for struct, fields in sorted(structs.items()):
        stem = struct[:-3]  # strip the 'Msg' suffix
        encode_body = function_body(
            cpp_masked, re.compile(r"\bencode\s*\(\s*const\s+" + struct + r"\s*&"))
        decode_body = function_body(
            cpp_masked, re.compile(r"\bdecode" + stem + r"\s*\("))
        for direction, body in (("encode", encode_body), ("decode", decode_body)):
            if body is None:
                findings.append(Finding(
                    cpp_path, 1, "serialization-coverage",
                    f"no {direction} function found for {struct}"))
                continue
            for field, line, _ftype in fields:
                if not re.search(r"\.\s*" + re.escape(field) + r"\b", body):
                    findings.append(Finding(
                        hpp_path, line, "serialization-coverage",
                        f"{struct}.{field} never touched in its {direction} "
                        f"path in {os.path.basename(cpp_path)} — silent "
                        "field drift"))
    return findings


SNAPSHOT_SCHEMA_RE = re.compile(r"\bkSnapshotSchema\s*\[\s*\]\s*=\s*\{")


def rule_snapshot_schema_coverage(cpp_path, cpp_masked, hpp_path, hpp_masked):
    """Every EntitySnapshot field needs a SnapshotField row in the schema.

    The schema table drives both the full and the delta wire paths, so a
    field missing from it silently never reaches the wire. Field names map
    to enumerators by capitalising the first letter (x -> kX, vx -> kVx,
    appData -> kAppData).
    """
    findings = []
    fields = parse_struct_fields(hpp_masked, "EntitySnapshot")
    if not fields:
        return [Finding(hpp_path, 1, "serialization-coverage",
                        "struct EntitySnapshot not found next to "
                        f"{os.path.basename(cpp_path)}")]
    m = SNAPSHOT_SCHEMA_RE.search(cpp_masked)
    if not m:
        return [Finding(cpp_path, 1, "serialization-coverage",
                        "no kSnapshotSchema table found — the schema-driven "
                        "codec has nothing to drive it")]
    open_brace = cpp_masked.find("{", m.start())
    end = match_bracket(cpp_masked, open_brace, "{", "}")
    body = cpp_masked[open_brace:end] if end != -1 else cpp_masked[open_brace:]
    for field, line, _ftype in fields:
        enumerator = "k" + field[0].upper() + field[1:]
        if not re.search(r"\bSnapshotField\s*::\s*" + enumerator + r"\b", body):
            findings.append(Finding(
                hpp_path, line, "serialization-coverage",
                f"EntitySnapshot.{field} has no SnapshotField::{enumerator} "
                f"row in kSnapshotSchema ({os.path.basename(cpp_path)}) — "
                "the field silently skips the wire"))
    return findings


# ---------------------------------------------------------------------------
# hot-path-alloc

HOT_ALLOC_PATTERNS = [
    (re.compile(r"(?<![\w:])new\b"), "operator new"),
    (re.compile(r"\bstd\s*::\s*string\b(?!_view)"), "std::string construction"),
    (re.compile(r"\bstd\s*::\s*to_string\b"), "std::to_string (allocates)"),
    (re.compile(r"\bstd\s*::\s*vector\s*<"), "std::vector construction"),
]


def rule_hot_path_alloc(path, raw, masked):
    findings = []
    for m in HOT_RE.finditer(raw):
        anno_line = line_of(raw, m.start())
        # The annotated function's body: first '{' after the annotation that
        # follows a ')' (i.e. after a signature, not an initializer).
        search_from = raw.find("\n", m.start())
        if search_from == -1:
            continue
        open_brace = -1
        paren_seen = False
        for i in range(search_from, len(masked)):
            ch = masked[i]
            if ch == "(":
                paren_seen = True
                i2 = match_bracket(masked, i, "(", ")")
                if i2 == -1:
                    break
            if ch == "{" and paren_seen:
                open_brace = i
                break
            if ch == ";" and not paren_seen:
                break  # hit a plain statement first: annotation is dangling
        if open_brace == -1:
            findings.append(Finding(
                path, anno_line, "hot-path-alloc",
                "// roia-hot annotation with no function body following it"))
            continue
        end = match_bracket(masked, open_brace, "{", "}")
        if end == -1:
            continue
        body = masked[open_brace:end]
        for pattern, what in HOT_ALLOC_PATTERNS:
            for hit in pattern.finditer(body):
                findings.append(Finding(
                    path, line_of(masked, open_brace + hit.start()),
                    "hot-path-alloc",
                    f"{what} inside // roia-hot function (annotated at "
                    f"line {anno_line})"))
    return findings


# ---------------------------------------------------------------------------
# bounded-retry

# Identifiers that mark a loop as re-attempting delivery of something: a
# comment saying "retry" is masked away, so only code-level names count.
RETRY_SIGNAL_RE = re.compile(
    r"retry|retries|retrying|retransmit|resend|redeliver|backoff|"
    r"poll(?:ing)?|reconnect", re.IGNORECASE)
# Evidence that the loop's persistence is bounded: an attempt counter, a
# deadline/budget/limit, an expiry check, or an explicit give-up path. The
# camelCase/snake_case max* family is matched case-sensitively so that a
# plain word like "climax" cannot satisfy the bound.
RETRY_BOUND_RE = re.compile(
    r"(?i:attempts?|deadline|budget|limit|expir\w*|remaining|give_?up)"
    r"|max[A-Z_]\w*")

LOOP_KEYWORD_RE = re.compile(r"\b(while|for)\s*\(")


def unbounded_loops(masked):
    """Yields (line, header, body) for loops with no structural exit: a
    while(true)/while(1), a for(;;), or a negated-flag spin `while (!x)`.

    Negated-flag spins with comparison/logical operators or an `empty()`
    check in the condition are excluded — draining a queue until empty is
    self-limiting, and compound conditions usually encode a bound already.
    """
    for m in LOOP_KEYWORD_RE.finditer(masked):
        open_paren = masked.find("(", m.start())
        end = match_bracket(masked, open_paren, "(", ")")
        if end == -1:
            continue
        inner = masked[open_paren + 1:end - 1].strip()
        if m.group(1) == "while":
            if inner not in ("true", "1"):
                flag = inner.replace("->", ".")
                if not (flag.startswith("!")
                        and not any(ch in flag for ch in "<>=&|")
                        and "empty" not in flag.lower()):
                    continue
        else:  # for
            if re.sub(r"\s+", "", inner) != ";;":
                continue
        j = end
        while j < len(masked) and masked[j].isspace():
            j += 1
        if j < len(masked) and masked[j] == "{":
            body_end = match_bracket(masked, j, "{", "}")
            body = masked[j:body_end] if body_end != -1 else masked[j:]
        else:
            semi = masked.find(";", j)
            body = masked[j:semi + 1] if semi != -1 else masked[j:]
        yield line_of(masked, m.start()), inner, body


def rule_bounded_retry(path, masked, in_core):
    if not in_core:
        return []
    findings = []
    for line, header, body in unbounded_loops(masked):
        if not RETRY_SIGNAL_RE.search(body):
            continue
        if RETRY_BOUND_RE.search(header) or RETRY_BOUND_RE.search(body):
            continue
        findings.append(Finding(
            path, line, "bounded-retry",
            "retry/retransmit loop with no structural exit and no attempt "
            "cap, deadline, or budget in sight — bound the retries or the "
            "loop spins forever against an unreachable peer"))
    return findings


# ---------------------------------------------------------------------------
# audit-vocabulary

# The registry header announces itself with this marker in its opening
# comment (canonically src/obs/events.hpp, line 1).
AUDIT_REGISTRY_MARKER = "roia-audit-event-registry"
AUDIT_REGISTRY_CONST_RE = re.compile(r'char\s*\*\s*k\w+\s*=\s*"([^"]*)"')
# A string literal assigned to an audit record's action field, or passed as
# the first argument of an audit-emitting call (auditEvent, auditOverload,
# ...). Whitespace may span lines.
AUDIT_ACTION_ASSIGN_RE = re.compile(r'\.\s*action\s*=\s*"([^"]*)"')
AUDIT_CALL_LITERAL_RE = re.compile(r'\baudit\w*\s*\(\s*"([^"]*)"')


def load_audit_vocabulary(files):
    """(vocabulary set, set of registry paths) from marker-tagged headers.

    Every scanned file whose first three lines carry the marker contributes
    its constants; when none is in the scan set, the canonical registry
    next to this tool's repo checkout is used so partial-tree invocations
    (e.g. linting one subdirectory) still know the vocabulary.
    """
    vocab = set()
    registries = set()
    for path in files:
        try:
            with open(path, encoding="utf-8") as f:
                text = f.read()
        except OSError:
            continue
        head = "\n".join(text.splitlines()[:3])
        if AUDIT_REGISTRY_MARKER in head:
            registries.add(path)
            vocab |= {m.group(1) for m in AUDIT_REGISTRY_CONST_RE.finditer(text)}
    if not registries:
        fallback = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, os.pardir, "src", "obs", "events.hpp")
        if os.path.isfile(fallback):
            with open(fallback, encoding="utf-8") as f:
                vocab |= {m.group(1)
                          for m in AUDIT_REGISTRY_CONST_RE.finditer(f.read())}
    return vocab, registries


def rule_audit_vocabulary(path, comment_masked, vocab):
    findings = []
    for pattern, how in ((AUDIT_ACTION_ASSIGN_RE, "assigned to an action field"),
                         (AUDIT_CALL_LITERAL_RE, "passed to an audit call")):
        for m in pattern.finditer(comment_masked):
            if m.group(1) in vocab:
                continue
            findings.append(Finding(
                path, line_of(comment_masked, m.start()), "audit-vocabulary",
                f'unregistered audit event "{m.group(1)}" {how}; add it to '
                "the roia-audit-event-registry header (src/obs/events.hpp) "
                "and reference the constant"))
    return findings


# ---------------------------------------------------------------------------
# whole-program rules (call-graph based; index built by cpp_index.py)

def rule_transitive_hot_alloc(index):
    """Allocations reachable from a // roia-hot root anywhere in the graph.

    BFS from every hot function; the first (therefore shortest) path to
    each reachable callee is recorded so the finding can print the full
    hot-root -> ... -> allocator chain. Allocations *inside* a hot function
    itself are the line-local hot-path-alloc rule's job; this rule covers
    exactly the callees that rule cannot see.
    """
    findings = []
    roots = [fn for fn in index.functions if fn.hot]
    parent = {}
    seen = {id(fn) for fn in roots}
    queue = collections.deque(roots)
    while queue:
        fn = queue.popleft()
        for callee, _call_line in index.callees(fn):
            if id(callee) in seen:
                continue
            seen.add(id(callee))
            parent[id(callee)] = fn
            queue.append(callee)
            if callee.allocs and not callee.hot:
                chain = [callee]
                node = fn
                while node is not None:
                    chain.append(node)
                    node = parent.get(id(node))
                chain.reverse()
                chain_text = " -> ".join(f.qualname for f in chain)
                for line, what in callee.allocs:
                    findings.append(Finding(
                        callee.file, line, "transitive-hot-alloc",
                        f"{what} in '{callee.qualname}' is reachable from "
                        f"// roia-hot root '{chain[0].qualname}' (chain: "
                        f"{chain_text}); hoist the buffer to the caller or "
                        "make the callee allocation-free"))
    return findings


def _up_bfs(index, start):
    """Caller-direction BFS: (id->dist, id->parent Function, id->Function).

    parent[x] is the node x was discovered from, i.e. one call closer to
    `start`, so walking parents from any node yields the node -> ... ->
    start path.
    """
    dist = {id(start): 0}
    parent = {}
    nodes = {id(start): start}
    queue = collections.deque([start])
    while queue:
        fn = queue.popleft()
        for caller, _line in index.callers(fn):
            if id(caller) in dist:
                continue
            dist[id(caller)] = dist[id(fn)] + 1
            parent[id(caller)] = fn
            nodes[id(caller)] = caller
            queue.append(caller)
    return dist, parent, nodes


def rule_determinism_taint(index, core_files):
    """Nondeterminism sources in the core flowing into observable sinks.

    A source function's return value taints its callers (caller-direction
    BFS); a sink function is reachable from its callers the same way. Any
    function in both closures is a meet point: the nondeterministic value
    can travel up from the source to the meet and down into the sink call.
    One finding per (source function, sink function) pair, anchored at the
    source fact's line, carrying the minimal source -> meet -> sink chain.
    """
    findings = []
    sources = [fn for fn in index.functions
               if fn.sources and fn.file in core_files]
    sinks = [fn for fn in index.functions if fn.sinks]
    if not sources or not sinks:
        return findings
    sink_maps = [(fn, _up_bfs(index, fn)) for fn in sinks]
    for src in sources:
        sdist, sparent, snodes = _up_bfs(index, src)
        for sink, (kdist, kparent, knodes) in sink_maps:
            best = None
            for fid, d in sdist.items():
                if fid in kdist and (best is None or d + kdist[fid] < best[1]):
                    best = (fid, d + kdist[fid])
            if best is None:
                continue
            meet_id = best[0]
            meet_to_src = []
            node = snodes[meet_id]
            while node is not None:
                meet_to_src.append(node)
                node = sparent.get(id(node))
            meet_to_sink = []
            node = knodes[meet_id]
            while node is not None:
                meet_to_sink.append(node)
                node = kparent.get(id(node))
            chain = list(reversed(meet_to_src)) + meet_to_sink[1:]
            src_line, src_kind, src_what = src.sources[0]
            _sink_line, sink_kind, sink_what = sink.sinks[0]
            chain_text = " -> ".join(f.qualname for f in chain)
            findings.append(Finding(
                src.file, src_line, "determinism-taint",
                f"{src_kind} source ({src_what}) in '{src.qualname}' can "
                f"reach {sink_kind} sink ({sink_what}) in '{sink.qualname}' "
                f"(flow: {chain_text}); route the value through seeded "
                "Rng/SimTime or sort before emission"))
    return findings


# ---------------------------------------------------------------------------
# wire-schema drift

WIRE_MANIFEST_SCHEMA = "roia-wire-manifest/1"
DEFAULT_MANIFEST = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "wire_manifest.json")

SNAPSHOT_ROW_RE = re.compile(r"\bSnapshotField\s*::\s*k(\w+)")


def _wire_rule_files(files, explicit):
    """(messages.hpp, snapshot_codec.cpp, entity.hpp) paths the rule covers.

    Without --manifest only the real protocol files (under an rtf/
    directory) participate, so fixture trees that merely *contain* a
    messages.hpp stay inert; an explicit --manifest opts any tree in.
    """
    def covered(path):
        return explicit or os.path.basename(os.path.dirname(path)) == "rtf"

    messages = next((p for p in files
                     if os.path.basename(p) == "messages.hpp" and covered(p)),
                    None)
    codec = next((p for p in files
                  if os.path.basename(p) == "snapshot_codec.cpp" and covered(p)),
                 None)
    entity = None
    if codec is not None:
        candidate = os.path.join(os.path.dirname(codec), "entity.hpp")
        if os.path.isfile(candidate):
            entity = candidate
    return messages, codec, entity


def extract_wire_manifest(messages_masked, entity_masked, codec_masked):
    """The current wire contract: *Msg fields + kSnapshotSchema rows in order."""
    manifest = {"schema": WIRE_MANIFEST_SCHEMA, "messages": {},
                "snapshot_schema": []}
    if messages_masked is not None:
        for struct, fields in parse_message_structs(messages_masked).items():
            manifest["messages"][struct] = [
                {"field": name, "type": ftype} for name, _line, ftype in fields]
    entity_types = {}
    if entity_masked is not None:
        entity_types = {name: ftype for name, _line, ftype
                        in parse_struct_fields(entity_masked, "EntitySnapshot")}
    if codec_masked is not None:
        m = SNAPSHOT_SCHEMA_RE.search(codec_masked)
        if m:
            open_brace = codec_masked.find("{", m.start())
            end = match_bracket(codec_masked, open_brace, "{", "}")
            body = codec_masked[open_brace:end] if end != -1 else codec_masked[open_brace:]
            for row in SNAPSHOT_ROW_RE.finditer(body):
                stem = row.group(1)
                field = stem[0].lower() + stem[1:]
                manifest["snapshot_schema"].append({
                    "field": field,
                    "enum": f"SnapshotField::k{stem}",
                    "type": entity_types.get(field, "?")})
    return manifest


def _field_sig(entries):
    return [f"{e.get('field')}:{e.get('type')}" for e in entries]


def rule_wire_schema_drift(current, manifest_path, messages_path,
                           messages_masked, codec_path, codec_masked):
    findings = []
    anchor = messages_path or codec_path
    try:
        with open(manifest_path, encoding="utf-8") as f:
            golden = json.load(f)
    except (OSError, ValueError) as err:
        return [Finding(
            anchor, 1, "wire-schema-drift",
            f"wire manifest {manifest_path} missing or unreadable ({err}); "
            "generate it with `roia_lint.py --write-manifest src/` and "
            "commit it")]
    regen = ("wire contract changed on purpose? regenerate and commit the "
             "manifest: `roia_lint.py --write-manifest src/`")
    struct_lines = (parse_message_struct_lines(messages_masked)
                    if messages_masked is not None else {})
    cur_msgs = current["messages"]
    gold_msgs = golden.get("messages", {})
    for struct in sorted(set(cur_msgs) | set(gold_msgs)):
        if struct not in gold_msgs:
            findings.append(Finding(
                messages_path, struct_lines.get(struct, 1), "wire-schema-drift",
                f"struct {struct} is not in the wire manifest; {regen}"))
        elif struct not in cur_msgs:
            findings.append(Finding(
                messages_path or anchor, 1, "wire-schema-drift",
                f"struct {struct} is in the wire manifest but gone from the "
                f"source; {regen}"))
        elif _field_sig(cur_msgs[struct]) != _field_sig(gold_msgs[struct]):
            findings.append(Finding(
                messages_path, struct_lines.get(struct, 1), "wire-schema-drift",
                f"{struct} wire fields drifted from the manifest: source "
                f"[{', '.join(_field_sig(cur_msgs[struct]))}] vs manifest "
                f"[{', '.join(_field_sig(gold_msgs[struct]))}]; {regen}"))
    if codec_masked is not None:
        cur_rows = _field_sig(current["snapshot_schema"])
        gold_rows = _field_sig(golden.get("snapshot_schema", []))
        if cur_rows != gold_rows:
            m = SNAPSHOT_SCHEMA_RE.search(codec_masked)
            line = line_of(codec_masked, m.start()) if m else 1
            findings.append(Finding(
                codec_path, line, "wire-schema-drift",
                f"kSnapshotSchema drifted from the manifest: source "
                f"[{', '.join(cur_rows)}] vs manifest "
                f"[{', '.join(gold_rows)}]; {regen}"))
    return findings


# ---------------------------------------------------------------------------
# suppression-debt

def git_age_days(path, line):
    """Age in days of the line per git blame, or None outside git/on error."""
    try:
        proc = subprocess.run(
            ["git", "blame", "--porcelain", "-L", f"{line},{line}", "--",
             os.path.abspath(path)],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(path)))
        if proc.returncode != 0:
            return None
        m = re.search(r"^committer-time (\d+)$", proc.stdout, re.MULTILINE)
        if not m:
            return None
        return max(0, int((time.time() - int(m.group(1))) / 86400))
    except Exception:
        return None


def suppression_debt(allows_by_file, suppressed):
    """(debt table, stale findings) for every well-formed allow().

    An allow is *live* if it suppressed at least one finding this run
    (the allow sits on the finding's line or the line above). Malformed
    allows are bad-suppression's territory and are skipped here.
    """
    used = {(f.file, line) for f in suppressed
            for line in (f.line, f.line - 1)}
    table = []
    findings = []
    for path in sorted(allows_by_file):
        for line, (rules, reason, _text) in sorted(allows_by_file[path].items()):
            if reason is None or rules - set(RULES):
                continue
            live = (path, line) in used
            table.append({
                "file": path, "line": line, "rules": sorted(rules),
                "reason": reason.strip(), "live": live,
                "age_days": git_age_days(path, line),
            })
            if not live:
                findings.append(Finding(
                    path, line, "suppression-debt",
                    f"stale suppression: allow({', '.join(sorted(rules))}) "
                    "no longer suppresses any finding on this or the next "
                    "line — delete it"))
    return table, findings


# ---------------------------------------------------------------------------
# driver

def path_subsystem(path):
    """('src', '<subsystem>') component pair, if the path has one."""
    parts = os.path.normpath(path).split(os.sep)
    for i, part in enumerate(parts[:-1]):
        if part == "src" and i + 1 < len(parts):
            return parts[i + 1]
    return None


def collect_files(paths):
    files = []
    for p in paths:
        if os.path.isfile(p):
            files.append(p)
        elif os.path.isdir(p):
            for root, dirs, names in os.walk(p):
                dirs[:] = sorted(d for d in dirs
                                 if not d.startswith(("build", ".")))
                for name in sorted(names):
                    if name.endswith(CPP_EXTENSIONS):
                        files.append(os.path.join(root, name))
        else:
            raise FileNotFoundError(p)
    return files


def paired_sources(path):
    """Masked text of same-stem sibling files (foo.cpp <-> foo.hpp/.h)."""
    stem, _ = os.path.splitext(path)
    out = []
    for ext in CPP_EXTENSIONS:
        sibling = stem + ext
        if sibling != path and os.path.isfile(sibling):
            with open(sibling, encoding="utf-8") as f:
                out.append(mask_source(f.read()))
    return out


def lint_files(files, assume_core=False, graph_files=None,
               manifest_path=None, manifest_explicit=False):
    """(findings, suppressed, suppression-debt table) over `files`.

    `graph_files` (default: `files`) is the file set the whole-program
    index covers; --changed-only passes the full tree here while linting
    only the changed subset, so call-graph rules still see every edge but
    only report into the subset. `manifest_path`/`manifest_explicit`
    configure the wire-schema-drift golden file (explicit opts fixture
    trees into the rule; by default only rtf/ protocol files participate).
    """
    findings = []
    suppressed = []
    messages_pairs = []
    snapshot_pairs = []
    allows_by_file = {}
    masked_by_file = {}
    audit_vocab, audit_registries = load_audit_vocabulary(files)
    for path in files:
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        masked = mask_source(raw)
        masked_by_file[path] = masked
        raw_lines = raw.splitlines()
        allows = collect_suppressions(raw_lines)
        allows_by_file[path] = allows

        subsystem = path_subsystem(path)
        in_core = assume_core or subsystem in CORE_DIRS
        paired = paired_sources(path)
        # Ordered iteration matters wherever results become observable:
        # the deterministic core always qualifies; elsewhere (e.g. the
        # fault injector in src/net) a reference to RNG/serialization/
        # telemetry machinery pulls the file into scope. src/obs is exempt:
        # its own exporters sort before emitting.
        feeds_output = in_core or (
            subsystem != "obs"
            and any(OUTPUT_FEED_RE.search(t) for t in [masked] + paired))

        file_findings = []
        file_findings += suppression_findings(path, allows)
        file_findings += rule_determinism(path, masked, in_core)
        file_findings += rule_ordered_iteration(path, masked, paired, feeds_output)
        file_findings += rule_hot_path_alloc(path, raw, masked)
        file_findings += rule_bounded_retry(path, masked, in_core)
        # The registry itself is exempt (its literals ARE the vocabulary);
        # with no registry in sight the rule has nothing to check against.
        if audit_vocab and path not in audit_registries:
            file_findings += rule_audit_vocabulary(path, mask_comments(raw),
                                                   audit_vocab)

        if os.path.basename(path) == "messages.hpp":
            cpp = os.path.splitext(path)[0] + ".cpp"
            if os.path.isfile(cpp):
                with open(cpp, encoding="utf-8") as f:
                    cpp_masked = mask_source(f.read())
                messages_pairs.append((path, masked, cpp, cpp_masked, allows))

        if os.path.basename(path) == "snapshot_codec.cpp":
            hpp = os.path.join(os.path.dirname(path), "entity.hpp")
            if os.path.isfile(hpp):
                with open(hpp, encoding="utf-8") as f:
                    hpp_masked = mask_source(f.read())
                snapshot_pairs.append((path, masked, hpp, hpp_masked, allows))
            else:
                file_findings.append(Finding(
                    path, 1, "serialization-coverage",
                    "snapshot_codec.cpp without entity.hpp beside it — "
                    "cannot check the kSnapshotSchema field coverage"))

        for finding in file_findings:
            (suppressed if is_suppressed(finding, allows) else findings).append(finding)

    for hpp_path, hpp_masked, cpp_path, cpp_masked, allows in messages_pairs:
        for finding in rule_serialization_coverage(hpp_path, hpp_masked,
                                                   cpp_path, cpp_masked):
            (suppressed if is_suppressed(finding, allows) else findings).append(finding)

    for cpp_path, cpp_masked, hpp_path, hpp_masked, allows in snapshot_pairs:
        for finding in rule_snapshot_schema_coverage(cpp_path, cpp_masked,
                                                     hpp_path, hpp_masked):
            (suppressed if is_suppressed(finding, allows) else findings).append(finding)

    # Whole-program rules: index the graph file set (the full tree even
    # under --changed-only), report only into the linted subset.
    index = cpp_index.build_index(graph_files or files)
    core_files = {p for p in (graph_files or files)
                  if assume_core or path_subsystem(p) in CORE_DIRS}
    linted = set(files)
    for finding in (rule_transitive_hot_alloc(index)
                    + rule_determinism_taint(index, core_files)):
        if finding.file not in linted:
            continue
        allows = allows_by_file.get(finding.file, {})
        (suppressed if is_suppressed(finding, allows) else findings).append(finding)

    # Wire-schema drift against the golden manifest.
    messages_path, codec_path, entity_path = _wire_rule_files(
        files, manifest_explicit)
    if messages_path is not None or codec_path is not None:
        entity_masked = None
        if entity_path is not None:
            entity_masked = masked_by_file.get(entity_path)
            if entity_masked is None:
                with open(entity_path, encoding="utf-8") as f:
                    entity_masked = mask_source(f.read())
        current = extract_wire_manifest(
            masked_by_file.get(messages_path), entity_masked,
            masked_by_file.get(codec_path))
        for finding in rule_wire_schema_drift(
                current, manifest_path or DEFAULT_MANIFEST,
                messages_path, masked_by_file.get(messages_path),
                codec_path, masked_by_file.get(codec_path)):
            allows = allows_by_file.get(finding.file, {})
            (suppressed if is_suppressed(finding, allows) else findings).append(finding)

    # Suppression debt: needs the final suppressed list, so it runs last.
    debt, stale = suppression_debt(allows_by_file, suppressed)
    findings.extend(stale)

    findings.sort(key=lambda f: (f.file, f.line, f.rule))
    return findings, suppressed, debt


def sarif_report(findings):
    """Minimal SARIF 2.1.0 document (GitHub code-scanning compatible)."""
    return {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                   "master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "roia-lint",
                "informationUri": "tools/lint/roia_lint.py",
                "rules": [{
                    "id": rule,
                    "shortDescription": {"text": rule},
                    "fullDescription": {"text": description},
                    "defaultConfiguration": {"level": "error"},
                } for rule, description in sorted(RULES.items())],
            }},
            "results": [{
                "ruleId": f.rule,
                "level": "error",
                "message": {"text": f.message},
                "locations": [{"physicalLocation": {
                    "artifactLocation": {
                        "uri": os.path.relpath(f.file).replace(os.sep, "/")},
                    "region": {"startLine": f.line},
                }}],
            } for f in findings],
        }],
    }


def git_changed_files():
    """Abspaths of files changed vs HEAD plus untracked files, or None."""
    changed = set()
    try:
        top = subprocess.run(["git", "rev-parse", "--show-toplevel"],
                             capture_output=True, text=True, timeout=10)
        if top.returncode != 0:
            return None
        root = top.stdout.strip()
        for cmd in (["git", "diff", "--name-only", "HEAD"],
                    ["git", "ls-files", "--others", "--exclude-standard"]):
            proc = subprocess.run(cmd, capture_output=True, text=True,
                                  timeout=30, cwd=root)
            if proc.returncode != 0:
                return None
            changed |= {os.path.abspath(os.path.join(root, line.strip()))
                        for line in proc.stdout.splitlines() if line.strip()}
    except Exception:
        return None
    return changed


def changed_subset(files, index):
    """Changed files + same-stem siblings + call-graph neighbor files."""
    changed = git_changed_files()
    if changed is None:
        return files  # not a git checkout: fall back to the full set
    by_abs = {os.path.abspath(p): p for p in files}
    subset = {p for a, p in by_abs.items() if a in changed}
    for path in list(subset):
        stem = os.path.splitext(os.path.abspath(path))[0]
        for a, p in by_abs.items():
            if os.path.splitext(a)[0] == stem:
                subset.add(p)
        for fn in index.by_file.get(path, []):
            for neighbor, _line in index.callees(fn) + index.callers(fn):
                if neighbor.file in by_abs.values() or neighbor.file in files:
                    subset.add(neighbor.file)
    return [p for p in files if p in subset]


def main():
    parser = argparse.ArgumentParser(
        description="project-invariant static analysis for the ROIA codebase")
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--rules", default=None,
                        help="comma-separated subset of rules to report")
    parser.add_argument("--assume-core", action="store_true",
                        help="treat every scanned file as deterministic-core "
                             "(used by the fixture self-test)")
    parser.add_argument("--manifest", default=None, metavar="PATH",
                        help="wire manifest to check against (default: "
                             "tools/lint/wire_manifest.json; passing this "
                             "also opts non-rtf/ trees into the rule)")
    parser.add_argument("--write-manifest", action="store_true",
                        help="regenerate the wire manifest from the scanned "
                             "tree and exit (0 on success)")
    parser.add_argument("--changed-only", action="store_true",
                        help="lint only files changed vs git HEAD (plus "
                             "same-stem siblings and call-graph neighbors); "
                             "the call graph still covers the full tree")
    args = parser.parse_args()

    if args.list_rules:
        for rule, description in RULES.items():
            print(f"{rule:24} {description}")
        return 0

    if not args.paths:
        parser.error("no paths given (try: roia_lint.py src/)")

    selected = None
    if args.rules is not None:
        selected = {r.strip() for r in args.rules.split(",") if r.strip()}
        unknown = selected - set(RULES)
        if unknown:
            parser.error(f"unknown rule(s): {sorted(unknown)}")

    try:
        files = collect_files(args.paths)
    except FileNotFoundError as err:
        print(f"ERROR: no such file or directory: {err}", file=sys.stderr)
        return 2

    manifest_path = args.manifest or DEFAULT_MANIFEST

    if args.write_manifest:
        messages_path, codec_path, entity_path = _wire_rule_files(
            files, args.manifest is not None)
        if messages_path is None and codec_path is None:
            print("ERROR: --write-manifest found no rtf/messages.hpp or "
                  "rtf/snapshot_codec.cpp in the scanned paths",
                  file=sys.stderr)
            return 2

        def masked_of(path):
            if path is None:
                return None
            with open(path, encoding="utf-8") as f:
                return mask_source(f.read())

        manifest = extract_wire_manifest(masked_of(messages_path),
                                         masked_of(entity_path),
                                         masked_of(codec_path))
        with open(manifest_path, "w", encoding="utf-8") as f:
            json.dump(manifest, f, indent=2, sort_keys=False)
            f.write("\n")
        print(f"wrote {manifest_path}: {len(manifest['messages'])} message "
              f"struct(s), {len(manifest['snapshot_schema'])} snapshot row(s)")
        return 0

    graph_files = files
    if args.changed_only:
        files = changed_subset(files, cpp_index.build_index(graph_files))

    findings, suppressed, debt = lint_files(
        files, assume_core=args.assume_core, graph_files=graph_files,
        manifest_path=manifest_path,
        manifest_explicit=args.manifest is not None)
    if selected is not None:
        findings = [f for f in findings if f.rule in selected]
        suppressed = [f for f in suppressed if f.rule in selected]

    if args.format == "json":
        print(json.dumps({
            "schema": "roia-lint/1",
            "files_scanned": len(files),
            "findings": [f.as_dict() for f in findings],
            "suppressed": [f.as_dict() for f in suppressed],
            "suppression_debt": debt,
        }, indent=2))
    elif args.format == "sarif":
        print(json.dumps(sarif_report(findings), indent=2))
    else:
        for f in findings:
            print(f"{f.file}:{f.line}: [{f.rule}] {f.message}")
        print(f"{len(files)} files scanned, {len(findings)} finding(s), "
              f"{len(suppressed)} suppressed", file=sys.stderr)

    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
