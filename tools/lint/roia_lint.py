#!/usr/bin/env python3
"""roia-lint: project-invariant static analysis for the ROIA codebase.

The repo's correctness story rests on source-level conventions that a
compiler cannot check: deterministic simulation (seeded RNG only, no wall
clock), stable iteration order anywhere bytes/RNG/telemetry are produced,
encode/decode symmetry for every wire message, and allocation-free hot
paths. This tool turns those conventions into named, machine-checkable
rules over the C++ sources. Stdlib Python only; token/AST-lite (comments
and string literals are masked before scanning, so commented-out code
never fires a rule).

Rules (see --list-rules):

  determinism            bans wall-clock and unseeded randomness in the
                         deterministic core (src/{sim,rtf,rms,model,game,
                         serialize}); src/obs and bench timing are exempt.
  ordered-iteration      flags range-for over std::unordered_map/set in
                         files that feed serialization, RNG draws, or
                         telemetry output — iteration order there leaks
                         into bytes/results and breaks the byte-identical
                         sweep contract.
  serialization-coverage parses every *Msg struct in rtf/messages.hpp and
                         verifies each field is touched by both its encode
                         and decode path in messages.cpp; also parses
                         EntitySnapshot (rtf/entity.hpp) and verifies every
                         field has a SnapshotField row in the kSnapshotSchema
                         wire table of snapshot_codec.cpp.
  hot-path-alloc         flags new / std::string / std::vector
                         construction inside functions annotated
                         `// roia-hot`.
  bounded-retry          flags retry/retransmit/poll loops in the
                         deterministic core with no structural exit
                         (while(true), for(;;), negated-flag spins) and no
                         attempt cap, deadline, or budget in sight — an
                         unreachable peer must not spin forever.
  audit-vocabulary       audit `action` names must come from the
                         marker-tagged registry header (the file whose
                         first lines contain `roia-audit-event-registry`,
                         canonically src/obs/events.hpp); flags string
                         literals assigned to an `.action` field or passed
                         as the first argument of an audit*() call that
                         are not registered there.
  bad-suppression        a `roia-lint: allow(...)` without a justification
                         (`-- <reason>`) or naming an unknown rule.

Suppressions: append `// roia-lint: allow(<rule>) -- <reason>` to the
offending line, or place it on the line directly above. The reason is
mandatory; a bare allow() is itself a finding.

Exit codes: 0 clean, 1 findings, 2 usage/internal error.

Typical invocations:

    python3 tools/lint/roia_lint.py src/
    python3 tools/lint/roia_lint.py --format json src/ | python3 -m json.tool
    python3 tools/lint/roia_lint.py --list-rules
"""

import argparse
import json
import os
import re
import sys

# Subsystems whose behaviour must be bit-reproducible from a seed. src/obs
# (telemetry sidecars may stamp wall-clock metadata) and the bench harnesses
# (wall-clock timing is their purpose) are deliberately outside this set.
CORE_DIRS = {"sim", "rtf", "rms", "model", "game", "serialize"}

CPP_EXTENSIONS = (".cpp", ".hpp", ".h", ".cc", ".hh")

RULES = {
    "determinism": (
        "rand()/srand(), std::random_device, std::chrono::system_clock, "
        "time(), and unseeded std::mt19937 are banned in the deterministic "
        "core — all randomness must flow through the seeded roia::Rng and "
        "all time through SimTime"
    ),
    "ordered-iteration": (
        "range-for over std::unordered_map/std::unordered_set in a file "
        "that feeds serialization, RNG draws, or telemetry output — "
        "unordered iteration order leaks into bytes/results"
    ),
    "serialization-coverage": (
        "every field of every *Msg struct in rtf/messages.hpp must appear "
        "in both its encode() and decode*() body in messages.cpp, and every "
        "EntitySnapshot field must have a SnapshotField::k<Name> row in the "
        "kSnapshotSchema wire table of snapshot_codec.cpp"
    ),
    "hot-path-alloc": (
        "no new / std::string / std::to_string / std::vector construction "
        "inside a function annotated // roia-hot"
    ),
    "bounded-retry": (
        "retry/retransmit/poll loops in the deterministic core with no "
        "structural exit (while(true), for(;;), negated-flag spins) must "
        "carry an attempt cap, deadline, or budget — unreachable peers "
        "must not spin forever"
    ),
    "audit-vocabulary": (
        "audit event (action) names must come from the registry header "
        "tagged `roia-audit-event-registry` (src/obs/events.hpp) — a "
        "free-form literal assigned to `.action` or passed first to an "
        "audit*() call breaks the closed, greppable audit vocabulary"
    ),
    "bad-suppression": (
        "roia-lint: allow(...) must name a known rule and carry a "
        "justification: // roia-lint: allow(<rule>) -- <reason>"
    ),
}

ALLOW_RE = re.compile(r"//\s*roia-lint:\s*allow\(([^)]*)\)(?:\s*--\s*(\S.*))?")
HOT_RE = re.compile(r"//\s*roia-hot\b")


class Finding:
    __slots__ = ("file", "line", "rule", "message")

    def __init__(self, file, line, rule, message):
        self.file = file
        self.line = line
        self.rule = rule
        self.message = message

    def as_dict(self):
        return {"file": self.file, "line": self.line, "rule": self.rule,
                "message": self.message}


def mask_source(text):
    """Replaces comments and string/char literals with spaces.

    Newlines are preserved so offsets and line numbers survive. Handles //,
    /* */, "...", '...' with escapes, and basic raw strings R"delim(...)delim".
    """
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            end = text.find("\n", i)
            end = n if end == -1 else end
            out.append(" " * (end - i))
            i = end
        elif c == "/" and nxt == "*":
            end = text.find("*/", i + 2)
            end = n if end == -1 else end + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:end]))
            i = end
        elif c == "R" and nxt == '"':
            close = text.find("(", i + 2)
            if close == -1:
                out.append(c)
                i += 1
                continue
            delim = text[i + 2:close]
            terminator = ")" + delim + '"'
            end = text.find(terminator, close + 1)
            end = n if end == -1 else end + len(terminator)
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:end]))
            i = end
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(" " * (j - i))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def mask_comments(text):
    """Replaces comments with spaces but keeps string literals intact.

    The audit-vocabulary rule needs to *read* string literals (they are the
    findings), yet commented-out emissions must stay inert — so this is the
    comment-only counterpart of mask_source(). Newlines are preserved.
    """
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            end = text.find("\n", i)
            end = n if end == -1 else end
            out.append(" " * (end - i))
            i = end
        elif c == "/" and nxt == "*":
            end = text.find("*/", i + 2)
            end = n if end == -1 else end + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:end]))
            i = end
        elif c == "R" and nxt == '"':
            close = text.find("(", i + 2)
            if close == -1:
                out.append(c)
                i += 1
                continue
            delim = text[i + 2:close]
            terminator = ")" + delim + '"'
            end = text.find(terminator, close + 1)
            end = n if end == -1 else end + len(terminator)
            out.append(text[i:end])
            i = end
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(text[i:j])
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def match_bracket(text, open_pos, open_ch, close_ch):
    """Offset just past the bracket closing text[open_pos]; -1 if unbalanced."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def collect_suppressions(raw_lines):
    """line -> (set of allowed rules, has_reason, raw allow() text)."""
    allows = {}
    for idx, line in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            allows[idx] = (rules, m.group(2) is not None, m.group(0))
    return allows


def suppression_findings(path, allows):
    findings = []
    for idx, (rules, has_reason, text) in sorted(allows.items()):
        unknown = rules - set(RULES)
        if unknown:
            findings.append(Finding(
                path, idx, "bad-suppression",
                f"allow() names unknown rule(s) {sorted(unknown)}"))
        if not has_reason:
            findings.append(Finding(
                path, idx, "bad-suppression",
                "allow() without a justification; write "
                "`// roia-lint: allow(<rule>) -- <reason>`"))
    return findings


def is_suppressed(finding, allows):
    if finding.rule == "bad-suppression":
        return False  # a broken suppression cannot suppress itself
    for line in (finding.line, finding.line - 1):
        entry = allows.get(line)
        if entry and finding.rule in entry[0] and entry[1]:
            return True
    return False


# ---------------------------------------------------------------------------
# determinism

DETERMINISM_PATTERNS = [
    (re.compile(r"(?<![\w:])s?rand\s*\("),
     "rand()/srand(): use the seeded roia::Rng instead"),
    (re.compile(r"\brandom_device\b"),
     "std::random_device is nondeterministic; seed a roia::Rng"),
    (re.compile(r"\bsystem_clock\b"),
     "wall clock in the deterministic core; use SimTime"),
    (re.compile(r"(?<![\w.>:])(?:std\s*::\s*)?time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "time() reads the wall clock; use SimTime"),
]

MT19937_UNSEEDED_RE = re.compile(
    r"\bmt19937(?:_64)?\s+\w+\s*(?:;|\(\s*\)|\{\s*\})|\bmt19937(?:_64)?\s*(?:\(\s*\)|\{\s*\})")
MT19937_ANY_RE = re.compile(r"\bmt19937(?:_64)?\b")


def rule_determinism(path, masked, in_core):
    if not in_core:
        return []
    findings = []
    for pattern, message in DETERMINISM_PATTERNS:
        for m in pattern.finditer(masked):
            findings.append(Finding(path, line_of(masked, m.start()),
                                    "determinism", message))
    for m in MT19937_UNSEEDED_RE.finditer(masked):
        findings.append(Finding(
            path, line_of(masked, m.start()), "determinism",
            "unseeded std::mt19937; use roia::Rng (or at minimum a "
            "fixed-seed construction)"))
    return findings


# ---------------------------------------------------------------------------
# ordered-iteration

UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set)\s*<")
# Signals that a file's results end up in bytes, RNG-dependent state, or
# telemetry — the contexts where iteration order becomes observable.
OUTPUT_FEED_RE = re.compile(
    r"\bRng\b|\brng_?\b|ser::|ByteWriter|encode\s*\(|Metrics|AuditLog|"
    r"Tracer|telemetry|printf|std::cout|writeVar")


def unordered_container_names(masked):
    """Identifiers declared with std::unordered_map/std::unordered_set type."""
    names = set()
    for m in UNORDERED_DECL_RE.finditer(masked):
        open_angle = masked.find("<", m.start())
        # Angle-bracket matching ignoring shifts: template args here never
        # contain expressions, so <...> counting is exact in practice.
        end = match_bracket(masked, open_angle, "<", ">")
        if end == -1:
            continue
        tail = masked[end:end + 200]
        decl = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*[;{=,)]", tail)
        if decl:
            names.add(decl.group(1))
    return names


def range_for_loops(masked):
    """Yields (line, range_expression) for every range-based for."""
    for m in re.finditer(r"\bfor\s*\(", masked):
        open_paren = masked.find("(", m.start())
        end = match_bracket(masked, open_paren, "(", ")")
        if end == -1:
            continue
        inner = masked[open_paren + 1:end - 1]
        # Find a top-level ':' that is not part of '::'.
        depth = 0
        for i, ch in enumerate(inner):
            if ch in "(<[{":
                depth += 1
            elif ch in ")>]}":
                depth -= 1
            elif ch == ":" and depth == 0:
                if (i > 0 and inner[i - 1] == ":") or inner[i + 1:i + 2] == ":":
                    continue
                yield line_of(masked, open_paren), inner[i + 1:].strip()
                break


def rule_ordered_iteration(path, masked, paired_masked, in_scope):
    if not in_scope:
        return []
    names = unordered_container_names(masked)
    for other in paired_masked:
        names |= unordered_container_names(other)
    if not names:
        return []
    findings = []
    for line, expr in range_for_loops(masked):
        terminal = re.search(r"([A-Za-z_]\w*)\s*$", expr)
        if terminal and terminal.group(1) in names:
            findings.append(Finding(
                path, line, "ordered-iteration",
                f"range-for over unordered container '{terminal.group(1)}' "
                "in an output-feeding file; iterate a sorted view or use an "
                "ordered container"))
    return findings


# ---------------------------------------------------------------------------
# serialization-coverage

STRUCT_RE = re.compile(r"\bstruct\s+(\w+Msg)\s*\{")


def struct_data_members(masked, open_brace, end):
    """list of (field_name, line): depth-1 data members of a struct body."""
    fields = []
    depth = 0
    stmt = []
    stmt_start = open_brace + 1
    for i in range(open_brace + 1, end - 1):
        ch = masked[i]
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
        elif depth == 0:
            if ch == ";":
                text = "".join(stmt)
                # Data members carry no parentheses once initializers
                # (brace form) are stripped; anything with '(' is a
                # function/constructor declaration.
                if "(" not in text:
                    # Drop '= default-value' initializers, keep the name.
                    text = text.split("=")[0]
                    name = re.search(r"([A-Za-z_]\w*)\s*$", text.strip())
                    if name and not text.strip().startswith(("using", "static")):
                        fields.append((name.group(1), line_of(masked, stmt_start)))
                stmt = []
                stmt_start = i + 1
            else:
                stmt.append(ch)
                if ch == "\n" and not "".join(stmt).strip():
                    stmt_start = i + 1
    return fields


def parse_message_structs(masked):
    """name -> list of (field_name, line). Depth-1 data members only."""
    structs = {}
    for m in STRUCT_RE.finditer(masked):
        open_brace = masked.find("{", m.start())
        end = match_bracket(masked, open_brace, "{", "}")
        if end == -1:
            continue
        structs[m.group(1)] = struct_data_members(masked, open_brace, end)
    return structs


def parse_struct_fields(masked, struct_name):
    """Depth-1 data members of one named struct: list of (name, line)."""
    m = re.search(r"\bstruct\s+" + re.escape(struct_name) + r"\s*\{", masked)
    if not m:
        return []
    open_brace = masked.find("{", m.start())
    end = match_bracket(masked, open_brace, "{", "}")
    if end == -1:
        return []
    return struct_data_members(masked, open_brace, end)


def function_body(masked, header_re):
    """Body text of the first function whose header matches header_re."""
    m = header_re.search(masked)
    if not m:
        return None
    open_brace = masked.find("{", m.end())
    if open_brace == -1:
        return None
    end = match_bracket(masked, open_brace, "{", "}")
    if end == -1:
        return None
    return masked[m.start():end]


def rule_serialization_coverage(hpp_path, hpp_masked, cpp_path, cpp_masked):
    findings = []
    structs = parse_message_structs(hpp_masked)
    for struct, fields in sorted(structs.items()):
        stem = struct[:-3]  # strip the 'Msg' suffix
        encode_body = function_body(
            cpp_masked, re.compile(r"\bencode\s*\(\s*const\s+" + struct + r"\s*&"))
        decode_body = function_body(
            cpp_masked, re.compile(r"\bdecode" + stem + r"\s*\("))
        for direction, body in (("encode", encode_body), ("decode", decode_body)):
            if body is None:
                findings.append(Finding(
                    cpp_path, 1, "serialization-coverage",
                    f"no {direction} function found for {struct}"))
                continue
            for field, line in fields:
                if not re.search(r"\.\s*" + re.escape(field) + r"\b", body):
                    findings.append(Finding(
                        hpp_path, line, "serialization-coverage",
                        f"{struct}.{field} never touched in its {direction} "
                        f"path in {os.path.basename(cpp_path)} — silent "
                        "field drift"))
    return findings


SNAPSHOT_SCHEMA_RE = re.compile(r"\bkSnapshotSchema\s*\[\s*\]\s*=\s*\{")


def rule_snapshot_schema_coverage(cpp_path, cpp_masked, hpp_path, hpp_masked):
    """Every EntitySnapshot field needs a SnapshotField row in the schema.

    The schema table drives both the full and the delta wire paths, so a
    field missing from it silently never reaches the wire. Field names map
    to enumerators by capitalising the first letter (x -> kX, vx -> kVx,
    appData -> kAppData).
    """
    findings = []
    fields = parse_struct_fields(hpp_masked, "EntitySnapshot")
    if not fields:
        return [Finding(hpp_path, 1, "serialization-coverage",
                        "struct EntitySnapshot not found next to "
                        f"{os.path.basename(cpp_path)}")]
    m = SNAPSHOT_SCHEMA_RE.search(cpp_masked)
    if not m:
        return [Finding(cpp_path, 1, "serialization-coverage",
                        "no kSnapshotSchema table found — the schema-driven "
                        "codec has nothing to drive it")]
    open_brace = cpp_masked.find("{", m.start())
    end = match_bracket(cpp_masked, open_brace, "{", "}")
    body = cpp_masked[open_brace:end] if end != -1 else cpp_masked[open_brace:]
    for field, line in fields:
        enumerator = "k" + field[0].upper() + field[1:]
        if not re.search(r"\bSnapshotField\s*::\s*" + enumerator + r"\b", body):
            findings.append(Finding(
                hpp_path, line, "serialization-coverage",
                f"EntitySnapshot.{field} has no SnapshotField::{enumerator} "
                f"row in kSnapshotSchema ({os.path.basename(cpp_path)}) — "
                "the field silently skips the wire"))
    return findings


# ---------------------------------------------------------------------------
# hot-path-alloc

HOT_ALLOC_PATTERNS = [
    (re.compile(r"(?<![\w:])new\b"), "operator new"),
    (re.compile(r"\bstd\s*::\s*string\b(?!_view)"), "std::string construction"),
    (re.compile(r"\bstd\s*::\s*to_string\b"), "std::to_string (allocates)"),
    (re.compile(r"\bstd\s*::\s*vector\s*<"), "std::vector construction"),
]


def rule_hot_path_alloc(path, raw, masked):
    findings = []
    for m in HOT_RE.finditer(raw):
        anno_line = line_of(raw, m.start())
        # The annotated function's body: first '{' after the annotation that
        # follows a ')' (i.e. after a signature, not an initializer).
        search_from = raw.find("\n", m.start())
        if search_from == -1:
            continue
        open_brace = -1
        paren_seen = False
        for i in range(search_from, len(masked)):
            ch = masked[i]
            if ch == "(":
                paren_seen = True
                i2 = match_bracket(masked, i, "(", ")")
                if i2 == -1:
                    break
            if ch == "{" and paren_seen:
                open_brace = i
                break
            if ch == ";" and not paren_seen:
                break  # hit a plain statement first: annotation is dangling
        if open_brace == -1:
            findings.append(Finding(
                path, anno_line, "hot-path-alloc",
                "// roia-hot annotation with no function body following it"))
            continue
        end = match_bracket(masked, open_brace, "{", "}")
        if end == -1:
            continue
        body = masked[open_brace:end]
        for pattern, what in HOT_ALLOC_PATTERNS:
            for hit in pattern.finditer(body):
                findings.append(Finding(
                    path, line_of(masked, open_brace + hit.start()),
                    "hot-path-alloc",
                    f"{what} inside // roia-hot function (annotated at "
                    f"line {anno_line})"))
    return findings


# ---------------------------------------------------------------------------
# bounded-retry

# Identifiers that mark a loop as re-attempting delivery of something: a
# comment saying "retry" is masked away, so only code-level names count.
RETRY_SIGNAL_RE = re.compile(
    r"retry|retries|retrying|retransmit|resend|redeliver|backoff|"
    r"poll(?:ing)?|reconnect", re.IGNORECASE)
# Evidence that the loop's persistence is bounded: an attempt counter, a
# deadline/budget/limit, an expiry check, or an explicit give-up path. The
# camelCase/snake_case max* family is matched case-sensitively so that a
# plain word like "climax" cannot satisfy the bound.
RETRY_BOUND_RE = re.compile(
    r"(?i:attempts?|deadline|budget|limit|expir\w*|remaining|give_?up)"
    r"|max[A-Z_]\w*")

LOOP_KEYWORD_RE = re.compile(r"\b(while|for)\s*\(")


def unbounded_loops(masked):
    """Yields (line, header, body) for loops with no structural exit: a
    while(true)/while(1), a for(;;), or a negated-flag spin `while (!x)`.

    Negated-flag spins with comparison/logical operators or an `empty()`
    check in the condition are excluded — draining a queue until empty is
    self-limiting, and compound conditions usually encode a bound already.
    """
    for m in LOOP_KEYWORD_RE.finditer(masked):
        open_paren = masked.find("(", m.start())
        end = match_bracket(masked, open_paren, "(", ")")
        if end == -1:
            continue
        inner = masked[open_paren + 1:end - 1].strip()
        if m.group(1) == "while":
            if inner not in ("true", "1"):
                flag = inner.replace("->", ".")
                if not (flag.startswith("!")
                        and not any(ch in flag for ch in "<>=&|")
                        and "empty" not in flag.lower()):
                    continue
        else:  # for
            if re.sub(r"\s+", "", inner) != ";;":
                continue
        j = end
        while j < len(masked) and masked[j].isspace():
            j += 1
        if j < len(masked) and masked[j] == "{":
            body_end = match_bracket(masked, j, "{", "}")
            body = masked[j:body_end] if body_end != -1 else masked[j:]
        else:
            semi = masked.find(";", j)
            body = masked[j:semi + 1] if semi != -1 else masked[j:]
        yield line_of(masked, m.start()), inner, body


def rule_bounded_retry(path, masked, in_core):
    if not in_core:
        return []
    findings = []
    for line, header, body in unbounded_loops(masked):
        if not RETRY_SIGNAL_RE.search(body):
            continue
        if RETRY_BOUND_RE.search(header) or RETRY_BOUND_RE.search(body):
            continue
        findings.append(Finding(
            path, line, "bounded-retry",
            "retry/retransmit loop with no structural exit and no attempt "
            "cap, deadline, or budget in sight — bound the retries or the "
            "loop spins forever against an unreachable peer"))
    return findings


# ---------------------------------------------------------------------------
# audit-vocabulary

# The registry header announces itself with this marker in its opening
# comment (canonically src/obs/events.hpp, line 1).
AUDIT_REGISTRY_MARKER = "roia-audit-event-registry"
AUDIT_REGISTRY_CONST_RE = re.compile(r'char\s*\*\s*k\w+\s*=\s*"([^"]*)"')
# A string literal assigned to an audit record's action field, or passed as
# the first argument of an audit-emitting call (auditEvent, auditOverload,
# ...). Whitespace may span lines.
AUDIT_ACTION_ASSIGN_RE = re.compile(r'\.\s*action\s*=\s*"([^"]*)"')
AUDIT_CALL_LITERAL_RE = re.compile(r'\baudit\w*\s*\(\s*"([^"]*)"')


def load_audit_vocabulary(files):
    """(vocabulary set, set of registry paths) from marker-tagged headers.

    Every scanned file whose first three lines carry the marker contributes
    its constants; when none is in the scan set, the canonical registry
    next to this tool's repo checkout is used so partial-tree invocations
    (e.g. linting one subdirectory) still know the vocabulary.
    """
    vocab = set()
    registries = set()
    for path in files:
        try:
            with open(path, encoding="utf-8") as f:
                text = f.read()
        except OSError:
            continue
        head = "\n".join(text.splitlines()[:3])
        if AUDIT_REGISTRY_MARKER in head:
            registries.add(path)
            vocab |= {m.group(1) for m in AUDIT_REGISTRY_CONST_RE.finditer(text)}
    if not registries:
        fallback = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, os.pardir, "src", "obs", "events.hpp")
        if os.path.isfile(fallback):
            with open(fallback, encoding="utf-8") as f:
                vocab |= {m.group(1)
                          for m in AUDIT_REGISTRY_CONST_RE.finditer(f.read())}
    return vocab, registries


def rule_audit_vocabulary(path, comment_masked, vocab):
    findings = []
    for pattern, how in ((AUDIT_ACTION_ASSIGN_RE, "assigned to an action field"),
                         (AUDIT_CALL_LITERAL_RE, "passed to an audit call")):
        for m in pattern.finditer(comment_masked):
            if m.group(1) in vocab:
                continue
            findings.append(Finding(
                path, line_of(comment_masked, m.start()), "audit-vocabulary",
                f'unregistered audit event "{m.group(1)}" {how}; add it to '
                "the roia-audit-event-registry header (src/obs/events.hpp) "
                "and reference the constant"))
    return findings


# ---------------------------------------------------------------------------
# driver

def path_subsystem(path):
    """('src', '<subsystem>') component pair, if the path has one."""
    parts = os.path.normpath(path).split(os.sep)
    for i, part in enumerate(parts[:-1]):
        if part == "src" and i + 1 < len(parts):
            return parts[i + 1]
    return None


def collect_files(paths):
    files = []
    for p in paths:
        if os.path.isfile(p):
            files.append(p)
        elif os.path.isdir(p):
            for root, dirs, names in os.walk(p):
                dirs[:] = sorted(d for d in dirs
                                 if not d.startswith(("build", ".")))
                for name in sorted(names):
                    if name.endswith(CPP_EXTENSIONS):
                        files.append(os.path.join(root, name))
        else:
            raise FileNotFoundError(p)
    return files


def paired_sources(path):
    """Masked text of same-stem sibling files (foo.cpp <-> foo.hpp/.h)."""
    stem, _ = os.path.splitext(path)
    out = []
    for ext in CPP_EXTENSIONS:
        sibling = stem + ext
        if sibling != path and os.path.isfile(sibling):
            with open(sibling, encoding="utf-8") as f:
                out.append(mask_source(f.read()))
    return out


def lint_files(files, assume_core=False):
    findings = []
    suppressed = []
    messages_pairs = []
    snapshot_pairs = []
    audit_vocab, audit_registries = load_audit_vocabulary(files)
    for path in files:
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        masked = mask_source(raw)
        raw_lines = raw.splitlines()
        allows = collect_suppressions(raw_lines)

        subsystem = path_subsystem(path)
        in_core = assume_core or subsystem in CORE_DIRS
        paired = paired_sources(path)
        # Ordered iteration matters wherever results become observable:
        # the deterministic core always qualifies; elsewhere (e.g. the
        # fault injector in src/net) a reference to RNG/serialization/
        # telemetry machinery pulls the file into scope. src/obs is exempt:
        # its own exporters sort before emitting.
        feeds_output = in_core or (
            subsystem != "obs"
            and any(OUTPUT_FEED_RE.search(t) for t in [masked] + paired))

        file_findings = []
        file_findings += suppression_findings(path, allows)
        file_findings += rule_determinism(path, masked, in_core)
        file_findings += rule_ordered_iteration(path, masked, paired, feeds_output)
        file_findings += rule_hot_path_alloc(path, raw, masked)
        file_findings += rule_bounded_retry(path, masked, in_core)
        # The registry itself is exempt (its literals ARE the vocabulary);
        # with no registry in sight the rule has nothing to check against.
        if audit_vocab and path not in audit_registries:
            file_findings += rule_audit_vocabulary(path, mask_comments(raw),
                                                   audit_vocab)

        if os.path.basename(path) == "messages.hpp":
            cpp = os.path.splitext(path)[0] + ".cpp"
            if os.path.isfile(cpp):
                with open(cpp, encoding="utf-8") as f:
                    cpp_masked = mask_source(f.read())
                messages_pairs.append((path, masked, cpp, cpp_masked, allows))

        if os.path.basename(path) == "snapshot_codec.cpp":
            hpp = os.path.join(os.path.dirname(path), "entity.hpp")
            if os.path.isfile(hpp):
                with open(hpp, encoding="utf-8") as f:
                    hpp_masked = mask_source(f.read())
                snapshot_pairs.append((path, masked, hpp, hpp_masked, allows))
            else:
                file_findings.append(Finding(
                    path, 1, "serialization-coverage",
                    "snapshot_codec.cpp without entity.hpp beside it — "
                    "cannot check the kSnapshotSchema field coverage"))

        for finding in file_findings:
            (suppressed if is_suppressed(finding, allows) else findings).append(finding)

    for hpp_path, hpp_masked, cpp_path, cpp_masked, allows in messages_pairs:
        for finding in rule_serialization_coverage(hpp_path, hpp_masked,
                                                   cpp_path, cpp_masked):
            (suppressed if is_suppressed(finding, allows) else findings).append(finding)

    for cpp_path, cpp_masked, hpp_path, hpp_masked, allows in snapshot_pairs:
        for finding in rule_snapshot_schema_coverage(cpp_path, cpp_masked,
                                                     hpp_path, hpp_masked):
            (suppressed if is_suppressed(finding, allows) else findings).append(finding)

    findings.sort(key=lambda f: (f.file, f.line, f.rule))
    return findings, suppressed


def main():
    parser = argparse.ArgumentParser(
        description="project-invariant static analysis for the ROIA codebase")
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--rules", default=None,
                        help="comma-separated subset of rules to report")
    parser.add_argument("--assume-core", action="store_true",
                        help="treat every scanned file as deterministic-core "
                             "(used by the fixture self-test)")
    args = parser.parse_args()

    if args.list_rules:
        for rule, description in RULES.items():
            print(f"{rule:24} {description}")
        return 0

    if not args.paths:
        parser.error("no paths given (try: roia_lint.py src/)")

    selected = None
    if args.rules is not None:
        selected = {r.strip() for r in args.rules.split(",") if r.strip()}
        unknown = selected - set(RULES)
        if unknown:
            parser.error(f"unknown rule(s): {sorted(unknown)}")

    try:
        files = collect_files(args.paths)
    except FileNotFoundError as err:
        print(f"ERROR: no such file or directory: {err}", file=sys.stderr)
        return 2

    findings, suppressed = lint_files(files, assume_core=args.assume_core)
    if selected is not None:
        findings = [f for f in findings if f.rule in selected]
        suppressed = [f for f in suppressed if f.rule in selected]

    if args.format == "json":
        print(json.dumps({
            "schema": "roia-lint/1",
            "files_scanned": len(files),
            "findings": [f.as_dict() for f in findings],
            "suppressed": [f.as_dict() for f in suppressed],
        }, indent=2))
    else:
        for f in findings:
            print(f"{f.file}:{f.line}: [{f.rule}] {f.message}")
        print(f"{len(files)} files scanned, {len(findings)} finding(s), "
              f"{len(suppressed)} suppressed", file=sys.stderr)

    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
