#!/usr/bin/env python3
"""cpp_index: a lightweight whole-program C++ indexer for roia-lint.

roia-lint's original rules are line-local: they can see a banned construct
only on the statement where it appears. The repo's invariants, however, are
*path* properties — "no allocation reachable from a hot function", "no
nondeterministic value flowing into an encode path" — so this module gives
the linter the missing half: a brace-parsed index of every function and
method under the scanned tree, the calls between them (cross-TU, resolved
by name with class/qualifier narrowing), and per-function facts the rules
propagate along the call graph:

  * allocates          operator new / std::string / std::to_string /
                       std::vector construction
  * nondeterminism     rand()/random_device/unseeded mt19937, wall clocks,
                       range-for over unordered containers, pointer-keyed
                       ordered containers
  * sinks              wire writes (ByteWriter / encode frames), telemetry
                       emission (audit/metrics/trace), floating-point
                       accumulators (StatAccumulator/Ewma-style .add())
  * hot                the function is annotated `// roia-hot`

Parsing model (stdlib regex + brace matching, no compiler): comments and
string literals are masked first, then the file is scanned as a sequence of
`{`-delimited scopes. Namespace and class scopes recurse; function bodies
and initializer/enum braces are skipped wholesale (nothing inside a body
opens a new indexed scope). The parser is deliberately tolerant: constructs
it cannot classify are skipped, never mis-indexed — the indexer unit test
(tests/lint/fixtures_index/) pins down what it must parse (namespaces,
classes, out-of-line `Cls::method` definitions, overloads, template
functions, constructors with init lists) and what it may skip (operator
overloads with exotic spellings, preprocessor-conditional bodies).

Known limitations (documented in DESIGN §17): calls are resolved by name,
so overload sets merge into one node family (a conservative
over-approximation); calls through function pointers, virtual dispatch to
out-of-index overrides, and macro-generated code are invisible; template
instantiations are indexed once at their definition.
"""

import os
import re

CPP_EXTENSIONS = (".cpp", ".hpp", ".h", ".cc", ".hh")

HOT_RE = re.compile(r"//\s*roia-hot\b")


def mask_source(text):
    """Replaces comments and string/char literals with spaces.

    Newlines are preserved so offsets and line numbers survive. Handles //,
    /* */, "...", '...' with escapes, and basic raw strings R"delim(...)delim".
    """
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            end = text.find("\n", i)
            end = n if end == -1 else end
            out.append(" " * (end - i))
            i = end
        elif c == "/" and nxt == "*":
            end = text.find("*/", i + 2)
            end = n if end == -1 else end + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:end]))
            i = end
        elif c == "R" and nxt == '"':
            close = text.find("(", i + 2)
            if close == -1:
                out.append(c)
                i += 1
                continue
            delim = text[i + 2:close]
            terminator = ")" + delim + '"'
            end = text.find(terminator, close + 1)
            end = n if end == -1 else end + len(terminator)
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:end]))
            i = end
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(" " * (j - i))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def match_bracket(text, open_pos, open_ch, close_ch):
    """Offset just past the bracket closing text[open_pos]; -1 if unbalanced."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


# ---------------------------------------------------------------------------
# head classification

# Names that can immediately precede a parenthesis without being a function
# definition (control flow, casts, compiler machinery).
CONTROL_NAMES = {
    "if", "for", "while", "switch", "catch", "do", "else", "try", "return",
    "sizeof", "alignof", "alignas", "decltype", "noexcept", "static_assert",
    "assert", "defined", "throw", "new", "delete", "case", "using",
    "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
    "__attribute__",
}

NAMESPACE_HEAD_RE = re.compile(r"\bnamespace\b\s*([A-Za-z_][\w:]*)?\s*$")
CLASS_HEAD_RE = re.compile(
    r"\b(?:class|struct|union)\s+([A-Za-z_]\w*)\s*(?:final\b\s*)?(?::\s*[^{]*)?$")
FUNC_NAME_RE = re.compile(
    r"((?:[A-Za-z_~]\w*\s*::\s*)*"
    r"(?:operator\s*(?:\(\s*\)|\[\s*\]|[^\s\w(]{1,3})|[A-Za-z_~]\w*))\s*$")


def _first_toplevel_paren_group(s):
    """(open, close) offsets of the first paren group at depth 0, or None."""
    depth = 0
    start = -1
    for i, ch in enumerate(s):
        if ch == "(":
            if depth == 0:
                start = i
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth == 0 and start != -1:
                return start, i
    return None


def _has_toplevel_assign(s):
    """True if `s` contains a bare '=' outside parens/braces/brackets."""
    depth = 0
    for i, ch in enumerate(s):
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        elif ch == "=" and depth == 0:
            prev = s[i - 1] if i > 0 else ""
            nxt = s[i + 1] if i + 1 < len(s) else ""
            if prev not in "=!<>+-*/%&|^" and nxt != "=":
                return True
    return False


def classify_head(head):
    """('namespace'|'class'|'function'|'skip', name) for the text before '{'."""
    s = head.strip()
    if not s:
        return "skip", None
    m = NAMESPACE_HEAD_RE.search(s)
    if m:
        return "namespace", m.group(1) or "<anon>"
    if re.search(r"\benum\b", s):
        return "skip", None
    if _has_toplevel_assign(s):
        return "skip", None  # initializer: `T x = {...}` / `T arr[] = {...}`
    group = _first_toplevel_paren_group(s)
    if group is not None:
        name_match = FUNC_NAME_RE.search(s[:group[0]])
        if name_match:
            name = re.sub(r"\s+", "", name_match.group(1))
            last = name.rsplit("::", 1)[-1]
            if last not in CONTROL_NAMES:
                return "function", name
        return "skip", None
    m = CLASS_HEAD_RE.search(s)
    if m:
        return "class", m.group(1)
    return "skip", None


# ---------------------------------------------------------------------------
# per-function fact extraction

ALLOC_PATTERNS = [
    (re.compile(r"(?<![\w:])new\b"), "operator new"),
    (re.compile(r"\bstd\s*::\s*string\b(?!_view)"), "std::string construction"),
    (re.compile(r"\bstd\s*::\s*to_string\b"), "std::to_string (allocates)"),
    (re.compile(r"\bstd\s*::\s*vector\s*<"), "std::vector construction"),
]

RNG_SOURCE_PATTERNS = [
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bmt19937(?:_64)?\s+\w+\s*(?:;|\(\s*\)|\{\s*\})"
                r"|\bmt19937(?:_64)?\s*(?:\(\s*\)|\{\s*\})"),
     "unseeded std::mt19937"),
]
CLOCK_SOURCE_PATTERNS = [
    (re.compile(r"\b(?:system|steady|high_resolution)_clock\b"), "wall clock"),
    (re.compile(r"(?<![\w.>:])(?:std\s*::\s*)?time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "time()"),
]

UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set)\s*<")
PTR_KEY_DECL_RE = re.compile(
    r"\b(?:map|set)\s*<\s*(?:const\s+)?[\w:]+(?:\s*<[^<>]*>)?\s*\*")

WIRE_SINK_RE = re.compile(
    r"\bByteWriter\b|[.>]\s*write[A-Z]\w*\s*\(|[.>]\s*appendRaw\s*\(")
TELEMETRY_SINK_RE = re.compile(
    r"\baudit\w*\s*\(|\bMetricsRegistry\b|\bAuditLog\b|\bTracer\b|"
    r"[.>]\s*counter\s*\(|[.>]\s*gauge\s*\(|[.>]\s*histogram\s*\(")

# Identifier declared with an FP-accumulator type; `name.add(...)` on one of
# these is the FpSum-style sink the taint rule cares about.
FP_ACCUM_TYPES_RE = re.compile(
    r"\b(StatAccumulator|Ewma|Histogram|LogHistogram|WindowedAverage)\b")

CALL_RE = re.compile(
    r"(?:([A-Za-z_]\w*)\s*(::|\.|->)\s*)?([A-Za-z_]\w*)\s*\(")

# Member-call names that are overwhelmingly std container/iterator methods.
# An unqualified `x.end()` must not resolve to a project method that happens
# to share the name (ProtocolTracker::end), so member-style calls with these
# names are dropped; qualified (`Cls::end(...)`) and free calls resolve
# normally. Cost: a real member call to a same-named project method is
# invisible to the graph — documented in DESIGN §17.
STD_METHOD_NAMES = {
    "begin", "end", "rbegin", "rend", "cbegin", "cend", "size", "empty",
    "clear", "find", "erase", "insert", "emplace", "emplace_back",
    "push_back", "pop_back", "push_front", "pop_front", "reserve", "resize",
    "front", "back", "at", "data", "count", "swap", "assign", "contains",
    "lower_bound", "upper_bound", "get", "reset", "release", "str", "c_str",
    "substr", "append", "length", "insert_or_assign", "value", "has_value",
    "value_or", "first", "second", "top", "pop", "push",
}

RANGE_FOR_RE = re.compile(r"\bfor\s*\(")


def declared_names(masked, type_re):
    """Identifiers declared with a type matching `type_re` (template form)."""
    names = set()
    for m in type_re.finditer(masked):
        open_angle = masked.find("<", m.start())
        tail_start = m.end()
        if open_angle != -1 and open_angle < m.end() + 2:
            end = match_bracket(masked, open_angle, "<", ">")
            if end == -1:
                continue
            tail_start = end
        decl = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*[;{=,)]",
                        masked[tail_start:tail_start + 200])
        if decl:
            names.add(decl.group(1))
    return names


def range_for_terminals(body):
    """Yields (offset, terminal identifier of the range expression)."""
    for m in RANGE_FOR_RE.finditer(body):
        open_paren = body.find("(", m.start())
        end = match_bracket(body, open_paren, "(", ")")
        if end == -1:
            continue
        inner = body[open_paren + 1:end - 1]
        depth = 0
        for i, ch in enumerate(inner):
            if ch in "(<[{":
                depth += 1
            elif ch in ")>]}":
                depth -= 1
            elif ch == ":" and depth == 0:
                if (i > 0 and inner[i - 1] == ":") or inner[i + 1:i + 2] == ":":
                    continue
                terminal = re.search(r"([A-Za-z_]\w*)\s*(?:\(\s*\))?\s*$",
                                     inner[i + 1:])
                if terminal:
                    yield m.start(), terminal.group(1)
                break


class Function:
    """One indexed function/method definition."""

    __slots__ = ("qualname", "name", "cls", "file", "line", "end_line", "hot",
                 "calls", "allocs", "sources", "sinks")

    def __init__(self, qualname, name, cls, file, line, end_line, hot):
        self.qualname = qualname
        self.name = name          # unqualified trailing component
        self.cls = cls            # enclosing/explicit class name, or None
        self.file = file
        self.line = line          # first line of the definition head
        self.end_line = end_line
        self.hot = hot
        self.calls = []           # (callee name, qualifier or None, line)
        self.allocs = []          # (line, what)
        self.sources = []         # (line, kind, what)
        self.sinks = []           # (line, kind, what)

    def __repr__(self):
        return f"<fn {self.qualname} {self.file}:{self.line}>"


def _extract_facts(fn, body, base_offset, masked, unordered_names, accum_names):
    for pattern, what in ALLOC_PATTERNS:
        for m in pattern.finditer(body):
            fn.allocs.append((line_of(masked, base_offset + m.start()), what))
    for pattern, what in RNG_SOURCE_PATTERNS:
        for m in pattern.finditer(body):
            fn.sources.append((line_of(masked, base_offset + m.start()), "rng", what))
    for pattern, what in CLOCK_SOURCE_PATTERNS:
        for m in pattern.finditer(body):
            fn.sources.append((line_of(masked, base_offset + m.start()), "clock", what))
    for offset, terminal in range_for_terminals(body):
        if terminal in unordered_names:
            fn.sources.append((line_of(masked, base_offset + offset),
                               "unordered-iteration",
                               f"range-for over unordered '{terminal}'"))
    for m in PTR_KEY_DECL_RE.finditer(body):
        fn.sources.append((line_of(masked, base_offset + m.start()),
                           "pointer-key-order", "pointer-keyed ordered container"))
    m = WIRE_SINK_RE.search(body)
    if m:
        fn.sinks.append((line_of(masked, base_offset + m.start()), "wire",
                         "ByteWriter / wire bytes"))
    m = TELEMETRY_SINK_RE.search(body)
    if m:
        fn.sinks.append((line_of(masked, base_offset + m.start()), "telemetry",
                         "metrics/audit/trace emission"))
    for m in re.finditer(r"([A-Za-z_]\w*)\s*[.]\s*add\s*\(", body):
        if m.group(1) in accum_names:
            fn.sinks.append((line_of(masked, base_offset + m.start()),
                             "fp-accumulate",
                             f"FP accumulator '{m.group(1)}'.add()"))
            break
    for m in CALL_RE.finditer(body):
        name = m.group(3)
        if name in CONTROL_NAMES:
            continue
        if m.group(2) in (".", "->") and name in STD_METHOD_NAMES:
            continue
        qualifier = m.group(1) if m.group(2) == "::" else None
        fn.calls.append((name, qualifier,
                         line_of(masked, base_offset + m.start())))


def parse_file(path, raw, unordered_extra=frozenset(), accum_extra=frozenset()):
    """List of Function for one file. `*_extra` carry paired-header decls."""
    masked = mask_source(raw)
    hot_lines = {line_of(raw, m.start()) for m in HOT_RE.finditer(raw)}
    unordered_names = declared_names(masked, UNORDERED_DECL_RE) | set(unordered_extra)
    accum_names = declared_names(masked, FP_ACCUM_TYPES_RE) | set(accum_extra)

    functions = []
    scope_stack = []  # (kind, name)
    i = 0
    seg_start = 0
    n = len(masked)
    while i < n:
        ch = masked[i]
        if ch == ";":
            seg_start = i + 1
            i += 1
        elif ch == "}":
            if scope_stack:
                scope_stack.pop()
            seg_start = i + 1
            i += 1
        elif ch == "{":
            kind, name = classify_head(masked[seg_start:i])
            if kind in ("namespace", "class"):
                scope_stack.append((kind, name))
                seg_start = i + 1
                i += 1
                continue
            end = match_bracket(masked, i, "{", "}")
            if end == -1:
                break  # unbalanced (preprocessor tricks): stop, don't mis-scope
            if kind == "function":
                head_line = line_of(masked, seg_start)
                open_line = line_of(masked, i)
                hot = any(l in hot_lines for l in range(head_line, open_line + 1))
                scope_names = [s_name for s_kind, s_name in scope_stack
                               if s_name and s_name != "<anon>"]
                qualname = "::".join(scope_names + [name])
                cls = None
                if "::" in name:
                    cls = name.rsplit("::", 2)[-2]
                else:
                    for s_kind, s_name in reversed(scope_stack):
                        if s_kind == "class":
                            cls = s_name
                            break
                fn = Function(qualname, name.rsplit("::", 1)[-1], cls, path,
                              head_line, line_of(masked, end - 1), hot)
                _extract_facts(fn, masked[i:end], i, masked,
                               unordered_names, accum_names)
                functions.append(fn)
            i = end
            seg_start = end
        else:
            i += 1
    return functions


class Index:
    """Whole-program function index + name-resolved call graph."""

    def __init__(self):
        self.functions = []
        self.by_name = {}      # unqualified name -> [Function]
        self.by_file = {}      # path -> [Function]
        self._edges = None     # Function -> [(Function, line)]
        self._redges = None    # Function -> [(Function, line)] (callers)

    def add_file(self, path, functions):
        self.by_file[path] = functions
        for fn in functions:
            self.functions.append(fn)
            self.by_name.setdefault(fn.name, []).append(fn)

    def resolve_call(self, caller, name, qualifier):
        """Candidate Functions for one call site (over-approximate)."""
        candidates = self.by_name.get(name)
        if not candidates:
            return []
        if qualifier:
            narrowed = [fn for fn in candidates if fn.cls == qualifier
                        or fn.qualname.endswith(f"{qualifier}::{fn.name}")]
            if narrowed:
                return narrowed
        return candidates

    def _build_edges(self):
        self._edges = {fn: [] for fn in self.functions}
        self._redges = {fn: [] for fn in self.functions}
        for fn in self.functions:
            seen = set()
            for name, qualifier, call_line in fn.calls:
                for callee in self.resolve_call(fn, name, qualifier):
                    if callee is fn or id(callee) in seen:
                        continue
                    seen.add(id(callee))
                    self._edges[fn].append((callee, call_line))
                    self._redges[callee].append((fn, call_line))

    def callees(self, fn):
        if self._edges is None:
            self._build_edges()
        return self._edges.get(fn, [])

    def callers(self, fn):
        if self._edges is None:
            self._build_edges()
        return self._redges.get(fn, [])


def paired_decl_names(files_by_stem, path):
    """(unordered, accum) names declared in same-stem sibling files."""
    stem = os.path.splitext(path)[0]
    unordered = set()
    accum = set()
    for sibling, masked in files_by_stem.get(stem, []):
        if sibling == path:
            continue
        unordered |= declared_names(masked, UNORDERED_DECL_RE)
        accum |= declared_names(masked, FP_ACCUM_TYPES_RE)
    return unordered, accum


def build_index(files):
    """Index every file in `files` (paths); unreadable files are skipped."""
    raws = {}
    for path in files:
        try:
            with open(path, encoding="utf-8") as f:
                raws[path] = f.read()
        except OSError:
            continue
    files_by_stem = {}
    for path, raw in raws.items():
        files_by_stem.setdefault(os.path.splitext(path)[0], []).append(
            (path, mask_source(raw)))
    index = Index()
    for path, raw in raws.items():
        unordered_extra, accum_extra = paired_decl_names(files_by_stem, path)
        index.add_file(path, parse_file(path, raw, unordered_extra, accum_extra))
    return index
